package scheduler

import (
	"sort"
	"sync"
	"time"
)

// Transition ops emitted to a Queue's TransitionLog, mirroring
// internal/journal's record ops so the daemon can forward them
// verbatim.
const (
	TransitionAdmitted  = "admitted"  // Push accepted the job
	TransitionClaimed   = "claimed"   // a thief took the job on a lease
	TransitionSettled   = "settled"   // Complete settled the lease
	TransitionRequeued  = "requeued"  // Requeue put the job back (front)
	TransitionAbandoned = "abandoned" // Requeue dropped the job: queue closed
)

// TransitionLog receives every queue state transition, synchronously
// and under the queue lock — so the log's record order always matches
// the order the queue actually changed state, which is what makes it
// safe to replay after a crash. Implementations must not call back
// into the Queue.
type TransitionLog interface {
	Transition(op string, job *Job, thief string)
}

// Queue is the stealable bounded job queue. The owner's workers Pop
// from the front (FIFO); thieves Claim from the back — the job that
// would otherwise wait longest — so stealing reduces tail latency
// first. Claimed jobs leave the queue but stay tracked under a lease:
// Complete settles them, and TakeExpired + Requeue recover the ones
// whose thief went silent, at the front, so a crashed thief costs one
// lease of latency rather than a second full wait through the backlog.
//
// All methods are safe for concurrent use. The queue never spawns
// goroutines: the owner drives expiry (a reaper calling TakeExpired
// then Requeue) and shutdown (Close).
type Queue struct {
	// Metrics, when set (before the queue starts serving claims),
	// counts the lease lifecycle: granted on Claim, settled on
	// Complete, expired on TakeExpired. Nil records nothing.
	Metrics *Metrics

	// Now overrides the wall clock for lease deadlines (nil =
	// time.Now). Set before the queue starts serving claims; tests use
	// it to expire leases without sleeping.
	Now func() time.Time

	// Journal, when set (before the queue starts serving), receives
	// every state transition. Nil records nothing.
	Journal TransitionLog

	mu       sync.Mutex
	notEmpty *sync.Cond
	capacity int
	jobs     []*Job
	claims   map[string]*claim
	closed   bool
}

// now is the queue's clock: Now if set, else the wall clock.
func (q *Queue) now() time.Time {
	if q.Now != nil {
		return q.Now()
	}
	return time.Now()
}

// transition forwards one state change to the journal, if any. Called
// with q.mu held.
func (q *Queue) transition(op string, j *Job, thief string) {
	if q.Journal != nil {
		q.Journal.Transition(op, j, thief)
	}
}

// claim is one outstanding steal: the job, who took it, and when the
// victim stops waiting for them.
type claim struct {
	job      *Job
	thief    string
	deadline time.Time
}

// NewQueue returns an empty queue admitting at most capacity queued
// jobs (claimed jobs do not count against it).
func NewQueue(capacity int) *Queue {
	q := &Queue{capacity: capacity, claims: make(map[string]*claim)}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Push appends a job, reporting false when the queue is full or closed.
func (q *Queue) Push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.jobs) >= q.capacity {
		return false
	}
	q.jobs = append(q.jobs, j)
	q.transition(TransitionAdmitted, j, "")
	q.notEmpty.Signal()
	return true
}

// Pop blocks until a job is available (returning the oldest) or the
// queue is closed and drained (returning ok=false). Worker goroutines
// loop on it.
func (q *Queue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if len(q.jobs) == 0 {
		return nil, false
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	return j, true
}

// TryPop is Pop without the blocking: it takes the oldest queued job if
// one is present right now, else reports ok=false immediately. Drivers
// that own the clock — the cluster simulator's single-threaded event
// loop — use it instead of parking a goroutine on the condition
// variable.
func (q *Queue) TryPop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		return nil, false
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	return j, true
}

// Claim removes the newest stealable job for a thief and leases it to
// them until now+lease. ok=false means nothing is stealable. The thief
// string is recorded for diagnostics and surfaced by Claimant.
func (q *Queue) Claim(thief string, lease time.Duration) (*Job, time.Time, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, time.Time{}, false
	}
	for i := len(q.jobs) - 1; i >= 0; i-- {
		j := q.jobs[i]
		if !j.Spec.Stealable() {
			continue
		}
		q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
		deadline := q.now().Add(lease)
		q.claims[j.ID] = &claim{job: j, thief: thief, deadline: deadline}
		q.transition(TransitionClaimed, j, thief)
		if q.Metrics != nil {
			q.Metrics.LeasesGranted.Inc()
		}
		return j, deadline, true
	}
	return nil, time.Time{}, false
}

// Complete settles a claimed job — the thief reported a result — and
// returns it. ok=false means the job is no longer claimed (the lease
// expired and the job was re-enqueued, or it was never claimed); the
// caller must then discard the late result.
func (q *Queue) Complete(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	c, ok := q.claims[id]
	if !ok {
		return nil, false
	}
	delete(q.claims, id)
	q.transition(TransitionSettled, c.job, c.thief)
	if q.Metrics != nil {
		q.Metrics.LeasesSettled.Inc()
	}
	return c.job, true
}

// Claimant reports who holds a job's lease, if anyone.
func (q *Queue) Claimant(id string) (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	c, ok := q.claims[id]
	if !ok {
		return "", false
	}
	return c.thief, true
}

// TakeExpired removes every claim whose lease passed and returns their
// jobs, oldest deadline first. The jobs are NOT yet back in the queue:
// until the owner hands them to Requeue they are invisible to Pop and
// Claim, which gives the owner a window to reset each job's visible
// state without racing a worker that would otherwise pop the job the
// instant it reappeared.
func (q *Queue) TakeExpired(now time.Time) []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	var expired []*claim
	for id, c := range q.claims {
		if now.After(c.deadline) {
			expired = append(expired, c)
			delete(q.claims, id)
		}
	}
	// Oldest deadline first; ties (claims granted at the same clock
	// reading, routine under an injected coarse clock) break on job ID
	// so recovery order is deterministic — the simulator pins replay
	// output byte-identical across runs, and map iteration above must
	// not leak into it.
	sort.Slice(expired, func(i, j int) bool {
		if !expired[i].deadline.Equal(expired[j].deadline) {
			return expired[i].deadline.Before(expired[j].deadline)
		}
		return expired[i].job.ID < expired[j].job.ID
	})
	jobs := make([]*Job, len(expired))
	for i, c := range expired {
		jobs[i] = c.job
	}
	if q.Metrics != nil && len(jobs) > 0 {
		q.Metrics.LeasesExpired.Add(float64(len(jobs)))
	}
	return jobs
}

// Requeue prepends jobs at the front of the queue — they already
// waited once — and wakes blocked Pops. It bypasses the admission cap:
// these jobs were admitted once, and dropping them on a full queue
// would turn a thief crash into job loss.
//
// A closed queue admits nothing, not even requeues: every job is
// returned as dropped (and journaled as abandoned) so the caller can
// record the loss instead of the old behavior — silently resurrecting
// jobs into a queue no worker will ever drain.
func (q *Queue) Requeue(jobs []*Job) (dropped []*Job) {
	if len(jobs) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		for _, j := range jobs {
			q.transition(TransitionAbandoned, j, "")
		}
		return jobs
	}
	for _, j := range jobs {
		q.transition(TransitionRequeued, j, "")
	}
	q.jobs = append(append(make([]*Job, 0, len(jobs)+len(q.jobs)), jobs...), q.jobs...)
	q.notEmpty.Broadcast()
	return nil
}

// Len counts queued (unclaimed) jobs.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

// Cap is the queue's admission bound.
func (q *Queue) Cap() int { return q.capacity }

// Stealable counts queued jobs a thief could claim right now.
func (q *Queue) Stealable() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, j := range q.jobs {
		if j.Spec.Stealable() {
			n++
		}
	}
	return n
}

// StealableDigests lists the trace digests of queued stealable jobs,
// newest first (the order Claim would take them), bounded to max
// entries (0 = unbounded). Gossiped in PeerStatus so thieves holding
// cached artifacts for a digest can aim their steal at this node.
func (q *Queue) StealableDigests(max int) []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []string
	for i := len(q.jobs) - 1; i >= 0; i-- {
		j := q.jobs[i]
		if j.Spec.TraceDigest == "" || !j.Spec.Stealable() {
			continue
		}
		out = append(out, j.Spec.TraceDigest)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// ClaimedCount counts outstanding leases.
func (q *Queue) ClaimedCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.claims)
}

// Close stops admission and wakes every blocked Pop; queued jobs still
// drain. Jobs out on a lease are left claimed: with a journal attached
// they replay as claimed at the next boot and recover like any expired
// lease, and a Requeue racing Close reports them dropped instead of
// resurrecting them into a queue no worker will drain.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notEmpty.Broadcast()
}
