package scheduler

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"perfplay/internal/clusterapi"
)

// fakeTransport scripts per-peer behavior for the steal protocol with
// no HTTP anywhere — the error-path coverage httptest fixtures make
// awkward: timeouts, garbage statuses, peers vanishing between probe
// and claim.
type fakeTransport struct {
	status map[string]PeerStatus // probe responses
	errs   map[string]error      // probe failures
	claims map[string][]StolenJob
	// claimErr fails Claim for a peer even when its probe succeeded —
	// the peer vanished (or started refusing) mid-claim.
	claimErr map[string]error
	settleErr
	probed  []string
	claimed []string
}

type settleErr struct {
	err     error
	settled []string
}

func (f *fakeTransport) Probe(peer string) (PeerStatus, error) {
	f.probed = append(f.probed, peer)
	if err := f.errs[peer]; err != nil {
		return PeerStatus{}, err
	}
	return f.status[peer], nil
}

func (f *fakeTransport) Claim(peer, thief string) (StolenJob, bool, error) {
	f.claimed = append(f.claimed, peer)
	if err := f.claimErr[peer]; err != nil {
		return StolenJob{}, false, err
	}
	q := f.claims[peer]
	if len(q) == 0 {
		return StolenJob{}, false, nil
	}
	j := q[0]
	f.claims[peer] = q[1:]
	return j, true, nil
}

func (f *fakeTransport) Settle(victim, jobID string, res clusterapi.StealResult) error {
	f.settled = append(f.settled, victim+"/"+jobID)
	return f.err
}

func stealerOver(t *testing.T, tr Transport, peers ...string) (*Stealer, *[]StolenJob) {
	t.Helper()
	var got []StolenJob
	idle := true
	s := &Stealer{
		Self:      "http://thief:1",
		Peers:     peers,
		Transport: tr,
		Gossip:    NewGossip(),
		Idle:      func() bool { return idle },
		Execute: func(victim string, j StolenJob) error {
			got = append(got, j)
			idle = false // one steal fills the fake node
			return nil
		},
	}
	return s, &got
}

// TestStealerSkipsTimedOutPeer: a probe timeout on one peer must not
// stop the round — the healthy peer is still probed, recorded, and
// stolen from, and the failure lands in gossip as an Err entry.
func TestStealerSkipsTimedOutPeer(t *testing.T) {
	tr := &fakeTransport{
		errs:   map[string]error{"http://dead:1": errors.New("probe http://dead:1: context deadline exceeded")},
		status: map[string]PeerStatus{"http://live:1": {QueueLen: 3, Stealable: 3}},
		claims: map[string][]StolenJob{"http://live:1": {{ID: "job-1", Spec: Spec{App: "x"}}}},
	}
	s, got := stealerOver(t, tr, "http://dead:1", "http://live:1")
	s.Tick(nil)
	if len(*got) != 1 || (*got)[0].ID != "job-1" {
		t.Fatalf("stole %v, want job-1 from the live peer", *got)
	}
	view := s.Gossip.Snapshot()
	if view["http://dead:1"].Err == "" {
		t.Fatalf("timed-out peer not flagged in gossip: %+v", view["http://dead:1"])
	}
	if view["http://live:1"].Err != "" || view["http://live:1"].QueueLen != 3 {
		t.Fatalf("live peer misrecorded: %+v", view["http://live:1"])
	}
}

// TestStealerSurvivesMalformedStatus: a peer whose probe decodes to
// garbage (the transport surfaces it as an error) is treated exactly
// like a dead one — skipped, flagged, round continues.
func TestStealerSurvivesMalformedStatus(t *testing.T) {
	tr := &fakeTransport{
		errs: map[string]error{
			"http://garbled:1": fmt.Errorf("probe http://garbled:1: invalid character '<' looking for beginning of value"),
		},
		status: map[string]PeerStatus{"http://ok:1": {QueueLen: 1, Stealable: 1}},
		claims: map[string][]StolenJob{"http://ok:1": {{ID: "job-2", Spec: Spec{App: "x"}}}},
	}
	s, got := stealerOver(t, tr, "http://garbled:1", "http://ok:1")
	s.Tick(nil)
	if len(*got) != 1 || (*got)[0].ID != "job-2" {
		t.Fatalf("stole %v, want job-2", *got)
	}
	if s.Stats().Probes != 2 {
		t.Fatalf("probes = %d, want 2 (both peers probed)", s.Stats().Probes)
	}
}

// TestStealerPeerVanishesMidClaim: the deepest victim answers the
// probe, then refuses the claim (restarted, crashed, drained). The
// stealer must fall through to the next-best victim in the same round
// rather than giving up.
func TestStealerPeerVanishesMidClaim(t *testing.T) {
	tr := &fakeTransport{
		status: map[string]PeerStatus{
			"http://deep:1":    {QueueLen: 9, Stealable: 9},
			"http://shallow:1": {QueueLen: 1, Stealable: 1},
		},
		claimErr: map[string]error{"http://deep:1": errors.New("claim http://deep:1: connection refused")},
		claims:   map[string][]StolenJob{"http://shallow:1": {{ID: "job-3", Spec: Spec{App: "x"}}}},
	}
	s, got := stealerOver(t, tr, "http://deep:1", "http://shallow:1")
	s.Tick(nil)
	if len(*got) != 1 || (*got)[0].ID != "job-3" {
		t.Fatalf("stole %v, want job-3 from the fallback victim", *got)
	}
	if tr.claimed[0] != "http://deep:1" {
		t.Fatalf("claim order %v: deepest victim must be tried first", tr.claimed)
	}
	if s.Stats().Claims != 1 {
		t.Fatalf("claims = %d, want 1 (failed claim must not count)", s.Stats().Claims)
	}
}

// TestStealerPrefersHintedVictim: a shallow victim advertising a
// digest the thief has cached outranks a deeper one without hints —
// and the aimed claim is counted.
func TestStealerPrefersHintedVictim(t *testing.T) {
	tr := &fakeTransport{
		status: map[string]PeerStatus{
			"http://deep:1": {QueueLen: 9, Stealable: 9},
			"http://warm:1": {QueueLen: 1, Stealable: 1, StealableDigests: []string{"sha256:abc"}},
		},
		claims: map[string][]StolenJob{
			"http://deep:1": {{ID: "job-deep", Spec: Spec{App: "x"}}},
			"http://warm:1": {{ID: "job-warm", Spec: Spec{TraceDigest: "sha256:abc"}}},
		},
	}
	s, got := stealerOver(t, tr, "http://deep:1", "http://warm:1")
	s.HasCached = func(digest string) bool { return digest == "sha256:abc" }
	s.Tick(nil)
	if len(*got) != 1 || (*got)[0].ID != "job-warm" {
		t.Fatalf("stole %v, want the hinted job-warm", *got)
	}
	if st := s.Stats(); st.HintedClaims != 1 {
		t.Fatalf("hinted claims = %d, want 1", st.HintedClaims)
	}
}

// TestStealerHintIgnoredWithoutCache: the same advertisement moves
// nothing when the thief holds no matching artifacts — depth ordering
// rules.
func TestStealerHintIgnoredWithoutCache(t *testing.T) {
	tr := &fakeTransport{
		status: map[string]PeerStatus{
			"http://deep:1": {QueueLen: 9, Stealable: 9},
			"http://warm:1": {QueueLen: 1, Stealable: 1, StealableDigests: []string{"sha256:abc"}},
		},
		claims: map[string][]StolenJob{
			"http://deep:1": {{ID: "job-deep", Spec: Spec{App: "x"}}},
		},
	}
	s, got := stealerOver(t, tr, "http://deep:1", "http://warm:1")
	s.HasCached = func(string) bool { return false }
	s.Tick(nil)
	if len(*got) != 1 || (*got)[0].ID != "job-deep" {
		t.Fatalf("stole %v, want job-deep (depth order)", *got)
	}
	if st := s.Stats(); st.HintedClaims != 0 {
		t.Fatalf("hinted claims = %d, want 0", st.HintedClaims)
	}
}

// TestIdlestPeer: the shared admission-redirect policy skips unknown,
// failed and full peers, picks the shortest queue, and breaks ties on
// peer order.
func TestIdlestPeer(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	view := map[string]PeerStatus{
		"http://a:1": {QueueLen: 5, QueueCap: 8},
		"http://b:1": {QueueLen: 2, QueueCap: 8, Err: "probe failed"},
		"http://c:1": {QueueLen: 8, QueueCap: 8}, // full
		"http://d:1": {QueueLen: 3, QueueCap: 8},
	}
	if peer, ok := IdlestPeer(peers, view); !ok || peer != "http://d:1" {
		t.Fatalf("IdlestPeer = %q/%v, want http://d:1", peer, ok)
	}
	// Ties break on peer order.
	view["http://a:1"] = PeerStatus{QueueLen: 3, QueueCap: 8}
	if peer, _ := IdlestPeer(peers, view); peer != "http://a:1" {
		t.Fatalf("tie broke to %q, want the earlier http://a:1", peer)
	}
	// Nothing usable.
	if _, ok := IdlestPeer(peers, map[string]PeerStatus{}); ok {
		t.Fatal("empty view must report no peer")
	}
}

// TestQueueTryPop covers the non-blocking pop the simulator's event
// loop uses.
func TestQueueTryPop(t *testing.T) {
	q := NewQueue(2)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue reported a job")
	}
	q.Push(&Job{ID: "a"})
	q.Push(&Job{ID: "b"})
	if j, ok := q.TryPop(); !ok || j.ID != "a" {
		t.Fatalf("TryPop = %v/%v, want the oldest job a", j, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d after TryPop, want 1", q.Len())
	}
}

// TestQueueStealableDigests: newest-first (claim order), digestless
// and unstealable jobs skipped, bounded by max.
func TestQueueStealableDigests(t *testing.T) {
	q := NewQueue(8)
	q.Push(&Job{ID: "1", Spec: Spec{TraceDigest: "sha256:aa"}})
	q.Push(&Job{ID: "2", Spec: Spec{App: "x"}}) // stealable, no digest
	q.Push(&Job{ID: "3", Spec: Spec{TraceDigest: "sha256:bb"}})
	q.Push(&Job{ID: "4"}) // not stealable
	got := q.StealableDigests(0)
	if len(got) != 2 || got[0] != "sha256:bb" || got[1] != "sha256:aa" {
		t.Fatalf("digests = %v, want [sha256:bb sha256:aa]", got)
	}
	if got := q.StealableDigests(1); len(got) != 1 || got[0] != "sha256:bb" {
		t.Fatalf("bounded digests = %v, want [sha256:bb]", got)
	}
}

// TestTakeExpiredDeterministicOrder: equal deadlines (one coarse
// injected clock reading) must recover in job-ID order, not map order.
func TestTakeExpiredDeterministicOrder(t *testing.T) {
	now := time.Unix(100, 0)
	q := NewQueue(8)
	q.Now = func() time.Time { return now }
	for _, id := range []string{"c", "a", "b"} {
		q.Push(&Job{ID: id, Spec: Spec{App: "x"}})
	}
	for range 3 {
		if _, _, ok := q.Claim("thief", time.Second); !ok {
			t.Fatal("claim failed")
		}
	}
	expired := q.TakeExpired(now.Add(2 * time.Second))
	if len(expired) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(expired))
	}
	got := []string{expired[0].ID, expired[1].ID, expired[2].ID}
	for i, want := range []string{"a", "b", "c"} {
		if got[i] != want {
			t.Fatalf("recovery order %v, want [a b c]", got)
		}
	}
}
