// Package scheduler is the cluster-level job scheduler behind
// perfplayd's work-stealing pool. It turns the daemon's bounded
// pending-job queue into a *stealable* queue: any idle peer can claim a
// whole queued job over HTTP (POST /jobs/claim), execute it on its own
// pipeline, and report the finished summary back to the victim — so a
// job submitted to node A completes on an idle node B while A's clients
// keep polling A, and the cluster behaves as a symmetric pool instead
// of a star with one coordinator.
//
// The package has three pieces:
//
//   - Queue: a bounded FIFO whose owner pops from the front while
//     thieves claim from the back, with lease-based crash recovery — a
//     claimed job whose thief never reports is re-enqueued at the front
//     when its lease expires, so a thief crash costs latency, never the
//     job.
//   - Stealer: the thief-side loop. While its node is idle it probes
//     peers for queue depth (GET /steal), claims from the deepest
//     backlog, and hands each stolen job to an executor callback.
//   - Gossip: the stealer's last-known view of every peer's queue
//     depth, surfaced through the daemon's /healthz for operators.
//
// Jobs are shipped as a Spec — a content-addressed description (a
// workload spec, or a trace digest the thief fetches from the victim's
// corpus) — never as serialized in-memory state, which is what makes a
// steal safe to retry and byte-identical to a local run: the thief's
// pipeline re-derives everything from the same content the victim held.
package scheduler

import "perfplay/internal/clusterapi"

// The wire types live in internal/clusterapi so transports (HTTP and
// simulated) and the daemon share one vocabulary; the aliases keep
// scheduler.Spec et al. valid for the packages that grew up on them.
type (
	// Spec is the wire-shippable description of one whole analysis job.
	Spec = clusterapi.Spec
	// StolenJob is what a successful claim hands the thief.
	StolenJob = clusterapi.StolenJob
	// PeerStatus is one gossip entry: a peer's queue depth and cache
	// population as last observed by this node's stealer.
	PeerStatus = clusterapi.PeerStatus
)

// Job is one unit of queued work: a stable ID, the wire spec (zero for
// local-only jobs), and an opaque owner-side payload (the daemon keeps
// its *job record there).
type Job struct {
	ID      string
	Spec    Spec
	Payload any
}
