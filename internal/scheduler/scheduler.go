// Package scheduler is the cluster-level job scheduler behind
// perfplayd's work-stealing pool. It turns the daemon's bounded
// pending-job queue into a *stealable* queue: any idle peer can claim a
// whole queued job over HTTP (POST /jobs/claim), execute it on its own
// pipeline, and report the finished summary back to the victim — so a
// job submitted to node A completes on an idle node B while A's clients
// keep polling A, and the cluster behaves as a symmetric pool instead
// of a star with one coordinator.
//
// The package has three pieces:
//
//   - Queue: a bounded FIFO whose owner pops from the front while
//     thieves claim from the back, with lease-based crash recovery — a
//     claimed job whose thief never reports is re-enqueued at the front
//     when its lease expires, so a thief crash costs latency, never the
//     job.
//   - Stealer: the thief-side loop. While its node is idle it probes
//     peers for queue depth (GET /steal), claims from the deepest
//     backlog, and hands each stolen job to an executor callback.
//   - Gossip: the stealer's last-known view of every peer's queue
//     depth, surfaced through the daemon's /healthz for operators.
//
// Jobs are shipped as a Spec — a content-addressed description (a
// workload spec, or a trace digest the thief fetches from the victim's
// corpus) — never as serialized in-memory state, which is what makes a
// steal safe to retry and byte-identical to a local run: the thief's
// pipeline re-derives everything from the same content the victim held.
package scheduler

import (
	"strings"
	"time"
)

// Spec is the wire-shippable description of one whole analysis job —
// everything a thief needs to reproduce the job's output bit-for-bit on
// its own pipeline. Exactly one of App or TraceDigest identifies the
// input: a registered workload name, or the content digest of a trace
// stored in the victim's corpus (the thief fetches the blob by digest
// when its own corpus misses it, verifying the hash on arrival).
//
// Jobs whose input is neither — an uploaded trace held only in victim
// memory — have a zero Spec and are not stealable.
type Spec struct {
	// App names a registered workload (mutually exclusive with
	// TraceDigest).
	App string `json:"app,omitempty"`
	// TraceDigest is the corpus content address ("sha256:...") of the
	// job's trace. The victim serving the claim is always a valid
	// source for the blob (GET /traces/{digest}).
	TraceDigest string `json:"trace,omitempty"`
	// Threads, Input, Scale and Seed parameterize workload recording;
	// they are inert for trace jobs but ship anyway so the thief's
	// cache keys match the victim's.
	Threads int     `json:"threads,omitempty"`
	Input   int     `json:"input,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	// TopK, Schemes and Races are the reporting options.
	TopK    int  `json:"top,omitempty"`
	Schemes bool `json:"schemes,omitempty"`
	Races   bool `json:"races,omitempty"`
}

// Stealable reports whether the spec describes a job a peer could
// reproduce — i.e. whether its input is content-addressed rather than
// held in the owner's memory.
func (s Spec) Stealable() bool { return s.App != "" || s.TraceDigest != "" }

// Job is one unit of queued work: a stable ID, the wire spec (zero for
// local-only jobs), and an opaque owner-side payload (the daemon keeps
// its *job record there).
type Job struct {
	ID      string
	Spec    Spec
	Payload any
}

// StolenJob is what a successful claim hands the thief: the victim's
// job ID (the thief reports the result back under it) and the spec to
// execute.
type StolenJob struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
	// LeaseMS is the victim's lease in milliseconds: the thief must
	// report a result within it or the victim re-runs the job itself.
	LeaseMS int64 `json:"lease_ms"`
	// Trace and Span carry the job's distributed-tracing context across
	// the steal: the thief adopts Trace as its trace ID and Span (the
	// victim's claim span) as the parent of the spans it records, so the
	// stolen execution lands on the same timeline the submit started.
	Trace string `json:"trace_id,omitempty"`
	Span  string `json:"span_id,omitempty"`
}

// PeerStatus is one gossip entry: a peer's queue depth and cache
// population as last observed by this node's stealer.
type PeerStatus struct {
	// QueueLen counts the peer's queued (unclaimed) jobs.
	QueueLen int `json:"queue_len"`
	// QueueCap is the peer's admission bound; QueueLen >= QueueCap
	// means the peer would 503 a submit right now. Zero means the peer
	// predates the field (unknown).
	QueueCap int `json:"queue_cap,omitempty"`
	// Stealable counts how many queued jobs a thief could claim.
	Stealable int `json:"stealable"`
	// CacheKeys are the peer's most recently used result-cache keys —
	// cache-population hints that let a cluster cache probe target the
	// node most likely to hold a key. Advisory and possibly stale: a
	// hinted key may have been evicted by the time it is probed, and
	// the prober must treat a 404 as an ordinary miss.
	CacheKeys []string `json:"cache_keys,omitempty"`
	// Seen is when this observation was made.
	Seen time.Time `json:"seen"`
	// Err is the probe failure, if the last probe failed (the counts
	// are then stale).
	Err string `json:"err,omitempty"`
}

// HintsKey reports whether the peer's gossiped cache hints include the
// given cache key.
func (st PeerStatus) HintsKey(key string) bool {
	for _, k := range st.CacheKeys {
		if k == key {
			return true
		}
	}
	return false
}

// HintsDigest reports whether any gossiped cache key belongs to the
// given content digest (cache keys lead with their source digest).
// Useful for artifacts keyed more coarsely than results — a peer
// hinting *any* result for a trace ran the identify pass and therefore
// holds that trace's verdict table, whatever reporting flags its job
// used.
func (st PeerStatus) HintsDigest(digest string) bool {
	for _, k := range st.CacheKeys {
		if strings.HasPrefix(k, digest+"|") {
			return true
		}
	}
	return false
}
