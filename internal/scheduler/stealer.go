package scheduler

import (
	"net/http"
	"sort"
	"sync"
	"time"
)

// Gossip is a node's last-known view of its peers' queue depths,
// updated by the stealer's probes and served through /healthz so an
// operator (or another scheduler) can see where the cluster's backlog
// lives without touching every node.
type Gossip struct {
	// Now overrides the wall clock for Seen stamps (nil = time.Now).
	// Set before the view is shared across goroutines.
	Now func() time.Time

	mu    sync.Mutex
	peers map[string]PeerStatus
}

// NewGossip returns an empty view.
func NewGossip() *Gossip { return &Gossip{peers: make(map[string]PeerStatus)} }

func (g *Gossip) now() time.Time {
	if g.Now != nil {
		return g.Now()
	}
	return time.Now()
}

// Record stores one successful probe observation and clears any stale
// Err from a previous failed probe. A zero Seen is stamped with the
// view's clock; a caller that already stamped observation time (the
// stealer, with its own injectable clock) keeps its stamp.
func (g *Gossip) Record(peer string, st PeerStatus) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st.Seen.IsZero() {
		st.Seen = g.now()
	}
	st.Err = ""
	g.peers[peer] = st
}

// RecordErr marks a peer's last probe as failed, keeping the previous
// counts visible but flagged stale.
func (g *Gossip) RecordErr(peer string, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.peers[peer]
	st.Err = err.Error()
	st.Seen = g.now()
	g.peers[peer] = st
}

// Snapshot copies the current view.
func (g *Gossip) Snapshot() map[string]PeerStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]PeerStatus, len(g.peers))
	for k, v := range g.peers {
		out[k] = v
	}
	return out
}

// StealerStats counts the thief side's lifetime activity.
type StealerStats struct {
	// Probes counts probe rounds (one per peer per idle tick).
	Probes int `json:"probes"`
	// Claims counts successful claims.
	Claims int `json:"claims"`
	// Executed counts stolen jobs whose executor callback returned,
	// success or not.
	Executed int `json:"executed"`
	// Failures counts executor callbacks that returned an error —
	// typically a result report that could not reach the victim (a
	// victim crash mid-steal); the victim's lease recovers the job.
	Failures int `json:"failures"`
	// HintedClaims counts claims aimed by cache-hint matching: the
	// victim advertised a stealable digest this node holds cached
	// artifacts for, promising a cheap (possibly zero-replay) steal.
	HintedClaims int `json:"hinted_claims,omitempty"`
}

// Stealer is the thief-side loop: while its node is idle it probes
// peers for stealable work, claims a whole job from the deepest
// backlog, and executes it through the Execute callback. One job is
// stolen and executed at a time — a stealer exists to soak up idle
// capacity, not to re-create the victim's backlog locally.
//
// All communication goes through Transport, so the same loop runs over
// HTTP in the daemon and over an in-memory fabric in the simulator.
type Stealer struct {
	// Self is this node's advertised base URL, sent with each claim so
	// victims can attribute leases in their diagnostics.
	Self string
	// Peers are victim base URLs ("http://host:8080").
	Peers []string
	// Interval is the idle poll cadence for Run (0 = 1s).
	Interval time.Duration
	// Idle reports whether this node currently has spare capacity; the
	// loop only claims work when it does.
	Idle func() bool
	// Execute runs one stolen job end to end — analyze and report the
	// result back to the victim. An error counts as a failure; the
	// victim's lease makes it safe to just drop the job.
	Execute func(victim string, job StolenJob) error
	// Gossip, when set, receives every probe observation.
	Gossip *Gossip
	// Transport carries probes and claims. Nil falls back to
	// HTTPTransport over Client.
	Transport Transport
	// Client overrides http.DefaultClient for the fallback HTTP
	// transport (ignored when Transport is set).
	Client *http.Client
	// HasCached, when set, reports whether this node holds cached
	// artifacts for a trace digest. Victims advertise the digests of
	// their stealable jobs; a victim advertising a digest this node has
	// cached is preferred over a merely deeper one — that steal settles
	// from cache instead of re-running the pipeline.
	HasCached func(digest string) bool
	// Metrics, when set before Run, hosts the thief-side counters on a
	// shared registry; otherwise a private registry is created lazily,
	// so Stats always has series to read.
	Metrics *Metrics
	// Now overrides the wall clock for gossip Seen stamps (nil =
	// time.Now). Set before Run.
	Now func() time.Time

	mu sync.Mutex
}

func (s *Stealer) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// metrics returns the instrument set, creating a private one on first
// use if the owner never supplied a shared registry.
func (s *Stealer) metrics() *Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Metrics == nil {
		s.Metrics = NewMetrics(nil)
	}
	return s.Metrics
}

// Stats returns a copy of the lifetime counters — read straight off the
// telemetry series, so /healthz and /metrics can never disagree.
func (s *Stealer) Stats() StealerStats {
	m := s.metrics()
	return StealerStats{
		Probes:       int(m.StealProbes.Int()),
		Claims:       int(m.StealClaims.Int()),
		Executed:     int(m.StealExecuted.Int()),
		Failures:     int(m.StealFailures.Int()),
		HintedClaims: int(m.StealHintedClaims.Int()),
	}
}

// transport returns the injected Transport, or the HTTP default.
func (s *Stealer) transport() Transport {
	if s.Transport != nil {
		return s.Transport
	}
	return &HTTPTransport{Client: s.Client}
}

// Run loops until stop closes, calling Tick once per interval. Call it
// on its own goroutine. Deterministic drivers (the cluster simulator)
// skip Run and call Tick directly at simulated time.
func (s *Stealer) Run(stop <-chan struct{}) {
	interval := s.Interval
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		s.Tick(stop)
	}
}

// Tick runs one scheduling round: a busy node probes once purely to
// refresh its gossip (steal-aware admission consults this view to pick
// the Retry-Peer redirect target, and a node is most in need of a
// fresh view exactly when it is too busy to steal); an idle node
// steals greedily while idle work keeps succeeding, so a long victim
// backlog drains at execution speed, not poll cadence.
func (s *Stealer) Tick(stop <-chan struct{}) {
	if s.Idle != nil && !s.Idle() {
		s.probeAll(stop)
		return
	}
	for s.Idle != nil && s.Idle() {
		if !s.stealOnce(stop) {
			break
		}
	}
}

// peerDepth is one probed peer's stealable backlog.
type peerDepth struct {
	peer      string
	stealable int
	// hinted marks a victim advertising a stealable digest this node
	// has cached artifacts for.
	hinted bool
}

// probeAll probes every peer once, recording each observation (or
// failure) in the gossip view, and returns the peers with stealable
// work. A stop signal mid-round returns nil — never a partial list —
// so a shutting-down caller cannot go on to claim a job it will never
// finish.
func (s *Stealer) probeAll(stop <-chan struct{}) []peerDepth {
	m := s.metrics()
	tr := s.transport()
	var depths []peerDepth
	for _, peer := range s.Peers {
		select {
		case <-stop:
			return nil
		default:
		}
		st, err := tr.Probe(peer)
		m.StealProbes.Inc()
		if err != nil {
			m.GossipUpdates.With("err").Inc()
			if s.Gossip != nil {
				s.Gossip.RecordErr(peer, err)
			}
			continue
		}
		m.GossipUpdates.With("ok").Inc()
		if s.Gossip != nil {
			st.Seen = s.now()
			s.Gossip.Record(peer, st)
		}
		if st.Stealable > 0 {
			d := peerDepth{peer: peer, stealable: st.Stealable}
			if s.HasCached != nil {
				for _, digest := range st.StealableDigests {
					if s.HasCached(digest) {
						d.hinted = true
						break
					}
				}
			}
			depths = append(depths, d)
		}
	}
	return depths
}

// stealOnce probes every peer, claims from the best victim, and
// executes the claim. Victims advertising a cache-hinted digest rank
// first (that steal is cheap — the artifacts are already here), then
// the deepest stealable backlog; remaining ties break on peer order
// for determinism. It reports whether a job was actually stolen (the
// caller's cue to immediately try again).
func (s *Stealer) stealOnce(stop <-chan struct{}) bool {
	depths := s.probeAll(stop)
	sort.SliceStable(depths, func(i, j int) bool {
		if depths[i].hinted != depths[j].hinted {
			return depths[i].hinted
		}
		return depths[i].stealable > depths[j].stealable
	})
	m := s.metrics()
	tr := s.transport()
	for _, d := range depths {
		job, ok, err := tr.Claim(d.peer, s.Self)
		if err != nil || !ok {
			continue // someone beat us to it, or the peer went away
		}
		m.StealClaims.Inc()
		if d.hinted {
			m.StealHintedClaims.Inc()
		}
		err = s.Execute(d.peer, job)
		m.StealExecuted.Inc()
		if err != nil {
			m.StealFailures.Inc()
		}
		return true
	}
	return false
}
