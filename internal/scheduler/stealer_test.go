package scheduler

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeVictim serves the victim half of the steal protocol from a Queue.
func fakeVictim(t *testing.T, q *Queue) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /steal", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(PeerStatus{
			QueueLen:  q.Len(),
			QueueCap:  q.Cap(),
			Stealable: q.Stealable(),
			CacheKeys: []string{"hot-key"},
		})
	})
	mux.HandleFunc("POST /jobs/claim", func(w http.ResponseWriter, r *http.Request) {
		j, deadline, ok := q.Claim("test-thief", time.Minute)
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		json.NewEncoder(w).Encode(StolenJob{ID: j.ID, Spec: j.Spec, LeaseMS: time.Until(deadline).Milliseconds()})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestStealerDrainsDeepestPeer(t *testing.T) {
	shallow := NewQueue(8)
	shallow.Push(stealableJob("s1"))
	deep := NewQueue(8)
	for _, id := range []string{"d1", "d2", "d3"} {
		deep.Push(stealableJob(id))
	}
	tsShallow, tsDeep := fakeVictim(t, shallow), fakeVictim(t, deep)

	var mu sync.Mutex
	var order []string
	idle := true
	done := make(chan struct{})
	st := &Stealer{
		Self:     "http://self",
		Peers:    []string{tsShallow.URL, tsDeep.URL},
		Interval: 5 * time.Millisecond,
		Gossip:   NewGossip(),
		Idle: func() bool {
			mu.Lock()
			defer mu.Unlock()
			return idle
		},
		Execute: func(victim string, job StolenJob) error {
			mu.Lock()
			defer mu.Unlock()
			order = append(order, job.ID)
			if len(order) == 4 {
				idle = false
				close(done)
			}
			return nil
		},
	}
	stop := make(chan struct{})
	defer close(stop)
	go st.Run(stop)

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("stealer stalled; stole %v", order)
	}
	mu.Lock()
	defer mu.Unlock()
	// The deeper backlog must be hit first; claims take the newest job.
	if order[0] != "d3" {
		t.Fatalf("first steal = %q, want d3 (deepest peer, newest job)", order[0])
	}
	if shallow.Stealable() != 0 || deep.Stealable() != 0 {
		t.Fatalf("backlogs not drained: shallow=%d deep=%d", shallow.Stealable(), deep.Stealable())
	}
	stats := st.Stats()
	if stats.Claims != 4 || stats.Executed != 4 || stats.Failures != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Gossip observed both peers.
	snap := st.Gossip.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("gossip tracks %d peers, want 2", len(snap))
	}
}

func TestStealerRespectsIdle(t *testing.T) {
	q := NewQueue(8)
	q.Push(stealableJob("a"))
	ts := fakeVictim(t, q)
	st := &Stealer{
		Self:     "http://self",
		Peers:    []string{ts.URL},
		Interval: 5 * time.Millisecond,
		Idle:     func() bool { return false },
		Execute: func(string, StolenJob) error {
			t.Error("executed a steal while not idle")
			return nil
		},
	}
	stop := make(chan struct{})
	go st.Run(stop)
	time.Sleep(100 * time.Millisecond)
	close(stop)
	if q.Stealable() != 1 {
		t.Fatal("busy node stole anyway")
	}
}

// TestProbe: the exported probe carries the peer's full status —
// admission headroom and cache hints included — and fails loudly
// against a dead peer.
func TestProbe(t *testing.T) {
	q := NewQueue(8)
	q.Push(stealableJob("a"))
	ts := fakeVictim(t, q)

	st, err := Probe(nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.QueueLen != 1 || st.QueueCap != 8 || st.Stealable != 1 {
		t.Fatalf("probe = %+v", st)
	}
	if !st.HintsKey("hot-key") || st.HintsKey("cold-key") {
		t.Fatalf("cache hints wrong: %v", st.CacheKeys)
	}
	hinted := PeerStatus{CacheKeys: []string{"sha256:abc|in0|t2|rest"}}
	if !hinted.HintsDigest("sha256:abc") || hinted.HintsDigest("sha256:ab") || hinted.HintsDigest("sha256:abd") {
		t.Fatalf("digest hints wrong: %v", hinted.CacheKeys)
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	if _, err := Probe(nil, deadURL); err == nil {
		t.Fatal("probe of a dead peer succeeded")
	}
}

// TestBusyNodeStillGossips: a node too busy to steal still probes its
// peers each tick — steal-aware admission reads this view to pick a
// Retry-Peer redirect target, and the view must not go stale exactly
// when the node is overloaded — while never actually claiming work.
func TestBusyNodeStillGossips(t *testing.T) {
	q := NewQueue(8)
	q.Push(stealableJob("a"))
	ts := fakeVictim(t, q)
	st := &Stealer{
		Self:     "http://self",
		Peers:    []string{ts.URL},
		Interval: 5 * time.Millisecond,
		Gossip:   NewGossip(),
		Idle:     func() bool { return false },
		Execute: func(string, StolenJob) error {
			t.Error("executed a steal while not idle")
			return nil
		},
	}
	stop := make(chan struct{})
	defer close(stop)
	go st.Run(stop)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if pst, ok := st.Gossip.Snapshot()[ts.URL]; ok && pst.Err == "" {
			if pst.QueueLen != 1 || pst.QueueCap != 8 {
				t.Fatalf("gossip entry = %+v", pst)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("busy node never refreshed its gossip")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if q.Stealable() != 1 {
		t.Fatal("busy node stole the job while gossiping")
	}
}

// TestStealerSurvivesDeadPeer: an unreachable peer is recorded in
// gossip as an error and skipped; live peers still get drained.
func TestStealerSurvivesDeadPeer(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	q := NewQueue(8)
	q.Push(stealableJob("a"))
	ts := fakeVictim(t, q)

	done := make(chan struct{})
	var once sync.Once
	st := &Stealer{
		Self:     "http://self",
		Peers:    []string{deadURL, ts.URL},
		Interval: 5 * time.Millisecond,
		Gossip:   NewGossip(),
		Idle:     func() bool { return true },
		Execute: func(victim string, job StolenJob) error {
			once.Do(func() { close(done) })
			return nil
		},
	}
	stop := make(chan struct{})
	defer close(stop)
	go st.Run(stop)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("live peer never drained past the dead one")
	}
	if st.Gossip.Snapshot()[deadURL].Err == "" {
		t.Fatal("dead peer's probe failure not recorded in gossip")
	}
}

// TestStealerCountsReportFailures: an Execute error (e.g. the victim
// died before the result could be reported) is a counted failure, not a
// wedge — the loop keeps going.
func TestStealerCountsReportFailures(t *testing.T) {
	q := NewQueue(8)
	q.Push(stealableJob("a"))
	q.Push(stealableJob("b"))
	ts := fakeVictim(t, q)

	drained := make(chan struct{})
	var calls int
	var mu sync.Mutex
	st := &Stealer{
		Self:     "http://self",
		Peers:    []string{ts.URL},
		Interval: 5 * time.Millisecond,
		Idle:     func() bool { return true },
		Execute: func(victim string, job StolenJob) error {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if calls == 2 {
				close(drained)
			}
			return &json.SyntaxError{} // any error: "victim unreachable"
		},
	}
	stop := make(chan struct{})
	defer close(stop)
	go st.Run(stop)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("stealer wedged after a failed report")
	}
	stats := st.Stats()
	if stats.Failures != 2 || stats.Executed != 2 {
		t.Fatalf("stats = %+v, want 2 executed / 2 failures", stats)
	}
}

// TestGossipFakeClock: Seen stamps come from the injectable clock, both
// on successful observations and failures — and the stealer's own clock
// wins over the victim's, so a peer with a skewed wall clock cannot
// make its gossip entry look fresher (or staler) than it is.
func TestGossipFakeClock(t *testing.T) {
	clock := newFakeClock()
	g := NewGossip()
	g.Now = clock.Now

	g.Record("http://a", PeerStatus{QueueLen: 3})
	if got := g.Snapshot()["http://a"].Seen; !got.Equal(clock.Now()) {
		t.Fatalf("Seen = %v, want the fake clock's %v", got, clock.Now())
	}
	clock.Advance(time.Minute)
	g.RecordErr("http://a", errProbe{})
	if got := g.Snapshot()["http://a"].Seen; !got.Equal(clock.Now()) {
		t.Fatalf("Seen after error = %v, want %v", got, clock.Now())
	}
	// A caller that pre-stamped observation time keeps its stamp.
	stamp := clock.Advance(time.Minute)
	clock.Advance(time.Hour)
	g.Record("http://b", PeerStatus{Seen: stamp})
	if got := g.Snapshot()["http://b"].Seen; !got.Equal(stamp) {
		t.Fatalf("pre-stamped Seen = %v, want %v", got, stamp)
	}
}

type errProbe struct{}

func (errProbe) Error() string { return "probe failed" }

// TestStealerStampsGossipWithOwnClock: the full probe path — Probe
// discards the victim's self-stamped Seen, and the stealer stamps the
// observation with its own (injectable) clock before recording it.
func TestStealerStampsGossipWithOwnClock(t *testing.T) {
	q := NewQueue(8)
	q.Push(stealableJob("a"))
	ts := fakeVictim(t, q)

	// The wire status carries the victim's wall clock...
	wire, err := Probe(nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	// ...but Probe clears it: observation time is the observer's.
	if !wire.Seen.IsZero() {
		t.Fatalf("Probe kept the victim's Seen stamp %v", wire.Seen)
	}

	clock := newFakeClock()
	st := &Stealer{
		Self:     "http://self",
		Peers:    []string{ts.URL},
		Interval: 5 * time.Millisecond,
		Gossip:   NewGossip(),
		Now:      clock.Now,
		Idle:     func() bool { return false }, // gossip-only ticks
		Execute:  func(string, StolenJob) error { return nil },
	}
	stop := make(chan struct{})
	defer close(stop)
	go st.Run(stop)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if pst, ok := st.Gossip.Snapshot()[ts.URL]; ok && pst.Err == "" {
			if !pst.Seen.Equal(clock.Now()) {
				t.Fatalf("gossip Seen = %v, want the stealer clock's %v", pst.Seen, clock.Now())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gossip never recorded the probe")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
