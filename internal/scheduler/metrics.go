package scheduler

import "perfplay/internal/telemetry"

// Metrics bundles the scheduler's telemetry instruments. One value is
// shared by the Queue (lease lifecycle), the Stealer (thief-side
// activity) and the Gossip view (probe bookkeeping) of a node, so the
// whole steal protocol reports into one consistent family set.
//
// A nil *Metrics is legal everywhere and records nothing; NewMetrics
// with a nil registry backs the instruments with a private one, which
// keeps Stats() readable even on nodes that never export /metrics.
type Metrics struct {
	// Thief side.
	StealProbes       *telemetry.Counter // probe rounds issued
	StealClaims       *telemetry.Counter // successful claims
	StealExecuted     *telemetry.Counter // stolen jobs whose executor returned
	StealFailures     *telemetry.Counter // executor returns that errored
	StealHintedClaims *telemetry.Counter // claims aimed by cache-hint matches

	// Victim side (lease lifecycle on the queue).
	LeasesGranted *telemetry.Counter // Claim handed a job to a thief
	LeasesSettled *telemetry.Counter // Complete accepted a thief's result
	LeasesExpired *telemetry.Counter // TakeExpired recovered a job

	// Gossip bookkeeping, labeled by probe result.
	GossipUpdates *telemetry.CounterVec // result=ok|err
}

// NewMetrics registers the scheduler families on reg (a nil reg uses a
// private registry).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Metrics{
		StealProbes: reg.NewCounter("perfplay_scheduler_steal_probes_total",
			"Peer queue probes issued by this node's stealer."),
		StealClaims: reg.NewCounter("perfplay_scheduler_steal_claims_total",
			"Jobs successfully claimed from peers."),
		StealExecuted: reg.NewCounter("perfplay_scheduler_steal_executed_total",
			"Stolen jobs executed to completion (success or failure)."),
		StealFailures: reg.NewCounter("perfplay_scheduler_steal_failures_total",
			"Stolen-job executions that returned an error."),
		StealHintedClaims: reg.NewCounter("perfplay_scheduler_steal_hinted_claims_total",
			"Claims aimed at a victim by a cache-hint match on a stealable digest."),
		LeasesGranted: reg.NewCounter("perfplay_scheduler_leases_granted_total",
			"Steal leases handed out by this node's queue."),
		LeasesSettled: reg.NewCounter("perfplay_scheduler_leases_settled_total",
			"Steal leases settled by a reported result."),
		LeasesExpired: reg.NewCounter("perfplay_scheduler_leases_expired_total",
			"Steal leases that expired and re-enqueued their job."),
		GossipUpdates: reg.NewCounterVec("perfplay_scheduler_gossip_updates_total",
			"Gossip view updates by probe result.", "result"),
	}
}

// RegisterQueueGauges exposes a queue's live state as callback gauges —
// evaluated at scrape time, so the rendered depth is current rather
// than as of the last push/pop.
func RegisterQueueGauges(reg *telemetry.Registry, q *Queue) {
	if reg == nil || q == nil {
		return
	}
	reg.NewGaugeFunc("perfplay_scheduler_queue_depth",
		"Queued (unclaimed) jobs.", func() float64 { return float64(q.Len()) })
	reg.NewGaugeFunc("perfplay_scheduler_queue_capacity",
		"Admission bound of the job queue.", func() float64 { return float64(q.Cap()) })
	reg.NewGaugeFunc("perfplay_scheduler_leases_outstanding",
		"Stolen jobs currently out on a lease.", func() float64 { return float64(q.ClaimedCount()) })
}
