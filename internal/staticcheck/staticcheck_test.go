package staticcheck

import (
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/ulcp"
	"perfplay/internal/workload"
)

// TestStaticOverClaimsConflicts builds the Fig. 1 situation: a region
// whose critical section only *sometimes* writes. Statically the merged
// write set makes every pair a conflict; dynamically most instances are
// read-read ULCPs — the Sec. 7.2 "unrolls into ULCPs and TLCPs" effect.
func TestStaticOverClaimsConflicts(t *testing.T) {
	p := sim.NewProgram("st")
	l := p.NewLock("fil_system->mutex")
	x := p.Mem.Alloc("unflushed", 0)
	s := p.Site("fil.cc", 5473, "fil_flush")
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < 12; j++ {
				th.Lock(l, s)
				th.Read(x, s)
				if j == 11 {
					// Buffering enabled exactly once: the rare write path.
					th.Write(x, int64(j), s)
				}
				th.Compute(200)
				th.Unlock(l, s)
				th.Compute(150)
			}
		})
	}
	rec := sim.Run(p, sim.Config{Seed: 9})
	static := Analyze(rec.Trace)
	css := rec.Trace.ExtractCS()
	dyn := ulcp.Identify(rec.Trace, css, ulcp.Options{})

	// One region, self-paired: the static verdict is TLCP (merged sets
	// conflict) ...
	if len(static.Findings) != 1 {
		t.Fatalf("findings = %d, want 1", len(static.Findings))
	}
	if static.Findings[0].Cat != ulcp.TLCP {
		t.Fatalf("static verdict = %v, want tlcp (merged write set)", static.Findings[0].Cat)
	}
	// ... while dynamically the region produced many read-read ULCPs.
	if dyn.Counts[ulcp.ReadRead] == 0 {
		t.Fatalf("dynamic counts = %v, want read-read ULCPs", dyn.Counts)
	}
	static.CompareWithDynamic(dyn)
	if static.Missed == 0 {
		t.Fatal("static analysis should have missed the dynamic ULCPs of the sometimes-writing region")
	}
}

// TestStaticFalsePositives: two regions on one lock that never actually
// interleave at runtime (phase-separated) still pair statically.
func TestStaticFalsePositives(t *testing.T) {
	p := sim.NewProgram("fp")
	l := p.NewLock("L")
	x := p.Mem.Alloc("x", 0)
	y := p.Mem.Alloc("y", 0)
	sa := p.Site("a.c", 10, "phase1")
	sb := p.Site("b.c", 20, "phase2")
	// Thread 0 only ever runs phase1; thread 1 runs phase2 strictly after
	// thread 0 finished (enforced by a huge delay): at runtime the two
	// regions never contend, so the scan sees pairs but a static tool
	// cannot know the phases are disjoint in time anyway — here we check
	// the static analyzer *does* claim a pair.
	p.AddThread(func(th *sim.Thread) {
		for j := 0; j < 4; j++ {
			th.Lock(l, sa)
			th.Read(x, sa)
			th.Unlock(l, sa)
			th.Compute(100)
		}
	})
	p.AddThread(func(th *sim.Thread) {
		th.Compute(100000)
		for j := 0; j < 4; j++ {
			th.Lock(l, sb)
			th.Read(y, sb)
			th.Unlock(l, sb)
			th.Compute(100)
		}
	})
	rec := sim.Run(p, sim.Config{Seed: 9})
	static := Analyze(rec.Trace)
	// Static: 3 findings (a-a, a-b, b-b), all ULCPs.
	if len(static.Findings) != 3 {
		t.Fatalf("findings = %d, want 3", len(static.Findings))
	}
	css := rec.Trace.ExtractCS()
	dyn := ulcp.Identify(rec.Trace, css, ulcp.Options{})
	static.CompareWithDynamic(dyn)
	if static.FalsePositive == 0 {
		t.Fatalf("expected static false positives for phase-separated regions (tp=%d fp=%d)",
			static.TruePositive, static.FalsePositive)
	}
}

// TestStaticOnRealWorkloads: on the real-world app models the static view
// must systematically miss dynamic ULCPs — regions with a ConflictEvery
// write path merge into "always conflicting" summaries even though most
// of their dynamic pairs are unnecessary (the Sec. 7.2 obstacle: one code
// snippet "may unroll into two execution cases as ULCPs and TLCPs").
func TestStaticOnRealWorkloads(t *testing.T) {
	for _, name := range []string{"mysql", "openldap", "dedup"} {
		app := workload.MustGet(name)
		p := app.Build(workload.Config{Threads: 2, Scale: 0.1, Seed: 3})
		rec := sim.Run(p, sim.Config{Seed: 3})
		static := Analyze(rec.Trace)
		css := rec.Trace.ExtractCS()
		dyn := ulcp.Identify(rec.Trace, css, ulcp.Options{})
		static.CompareWithDynamic(dyn)
		if static.Missed == 0 {
			t.Errorf("%s: static analysis missed no dynamic ULCPs — implausible per Sec. 7.2 (tp=%d fp=%d)",
				name, static.TruePositive, static.FalsePositive)
		}
	}
}
