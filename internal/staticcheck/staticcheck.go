// Package staticcheck implements the static-analysis strawman of the
// paper's Sec. 7.2: a detector that, like a static exploration tool, can
// only reason at the code-region level. It merges the access sets of all
// dynamic instances of each region and classifies region *pairs* — and
// therefore "may produce abundant false ULCPs due to the runtime behaviors
// of ULCPs": a region that only sometimes writes looks like it always
// writes, and two regions that never overlapped at runtime still pair.
//
// The package exists to quantify that claim against PerfPlay's dynamic
// identification (see CompareWithDynamic and the corresponding test).
package staticcheck

import (
	"sort"

	"perfplay/internal/memmodel"
	"perfplay/internal/trace"
	"perfplay/internal/ulcp"
)

// RegionSummary is how a static tool sees one synchronized code region:
// the union of everything any execution of it might touch.
type RegionSummary struct {
	Region trace.Region
	Lock   trace.LockID
	Reads  map[memmodel.Addr]struct{}
	Writes map[memmodel.Addr]struct{}
	// Dynamic counts how many dynamic critical sections the region had.
	Dynamic int
}

// Finding is one statically-claimed ULCP between two regions of a lock.
type Finding struct {
	R1, R2 trace.Region
	Lock   trace.LockID
	Cat    ulcp.Category
}

// Report is the static analysis outcome plus its confusion matrix against
// the dynamic ground truth.
type Report struct {
	Regions  []*RegionSummary
	Findings []Finding
	// TruePositive counts static ULCP region pairs that the dynamic
	// analysis also found at least one ULCP for; FalsePositive those it
	// never did; Missed counts dynamically-ULCP region pairs the static
	// view classified as conflicting.
	TruePositive, FalsePositive, Missed int
}

// Analyze summarizes regions from a recorded trace the way a static tool
// would see the program (per code region, flow-insensitive) and classifies
// every same-lock region pair with Algorithm 1.
func Analyze(tr *trace.Trace) *Report {
	css := tr.ExtractCS()
	byKey := make(map[string]*RegionSummary)
	for _, cs := range css {
		key := cs.Lock.String() + "|" + cs.Region.String()
		rs, ok := byKey[key]
		if !ok {
			rs = &RegionSummary{
				Region: cs.Region, Lock: cs.Lock,
				Reads:  make(map[memmodel.Addr]struct{}),
				Writes: make(map[memmodel.Addr]struct{}),
			}
			byKey[key] = rs
		}
		rs.Dynamic++
		for a := range cs.Reads {
			rs.Reads[a] = struct{}{}
		}
		for a := range cs.Writes {
			rs.Writes[a] = struct{}{}
		}
	}
	rep := &Report{}
	for _, rs := range byKey {
		rep.Regions = append(rep.Regions, rs)
	}
	sort.Slice(rep.Regions, func(i, j int) bool {
		if rep.Regions[i].Lock != rep.Regions[j].Lock {
			return rep.Regions[i].Lock < rep.Regions[j].Lock
		}
		return rep.Regions[i].Region.Less(rep.Regions[j].Region)
	})
	// Pair every two regions of the same lock (including self-pairs: a
	// region contending with itself across threads).
	byLock := make(map[trace.LockID][]*RegionSummary)
	for _, rs := range rep.Regions {
		byLock[rs.Lock] = append(byLock[rs.Lock], rs)
	}
	for l, regions := range byLock {
		for i := 0; i < len(regions); i++ {
			for j := i; j < len(regions); j++ {
				cat := classifyStatic(regions[i], regions[j])
				rep.Findings = append(rep.Findings, Finding{
					R1: regions[i].Region, R2: regions[j].Region, Lock: l, Cat: cat,
				})
			}
		}
	}
	return rep
}

// classifyStatic applies Algorithm 1 to merged region summaries.
func classifyStatic(a, b *RegionSummary) ulcp.Category {
	emptyA := len(a.Reads) == 0 && len(a.Writes) == 0
	emptyB := len(b.Reads) == 0 && len(b.Writes) == 0
	switch {
	case emptyA || emptyB:
		return ulcp.NullLock
	case len(a.Writes) == 0 && len(b.Writes) == 0:
		return ulcp.ReadRead
	case !intersects(a.Reads, b.Writes) && !intersects(a.Writes, b.Reads) &&
		!intersects(a.Writes, b.Writes):
		return ulcp.DisjointWrite
	default:
		return ulcp.TLCP
	}
}

func intersects(a, b map[memmodel.Addr]struct{}) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for x := range a {
		if _, ok := b[x]; ok {
			return true
		}
	}
	return false
}

// CompareWithDynamic fills the confusion matrix against a dynamic report:
// region pairs the dynamic analysis proved unnecessary at runtime versus
// the static view's verdicts.
func (r *Report) CompareWithDynamic(dyn *ulcp.Report) {
	type key struct{ a, b string }
	norm := func(x, y trace.Region) key {
		if y.Less(x) {
			x, y = y, x
		}
		return key{x.String(), y.String()}
	}
	dynULCP := make(map[key]bool)
	for _, p := range dyn.Pairs {
		if p.Cat.IsULCP() {
			dynULCP[norm(p.C1.Region, p.C2.Region)] = true
		}
	}
	for _, f := range r.Findings {
		k := norm(f.R1, f.R2)
		if f.Cat.IsULCP() {
			if dynULCP[k] {
				r.TruePositive++
			} else {
				r.FalsePositive++
			}
		} else if dynULCP[k] {
			// Static says conflict; dynamic proved unnecessary instances
			// exist — the "unrolls into ULCPs and TLCPs" case of Sec. 7.2.
			r.Missed++
		}
	}
}
