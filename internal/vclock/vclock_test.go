package vclock

import (
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	a := New(3)
	a.Tick(0)
	a.Tick(0)
	a.Tick(1)
	if a.At(0) != 2 || a.At(1) != 1 || a.At(2) != 0 {
		t.Fatalf("a = %v", a)
	}
	b := New(3)
	b.Tick(2)
	b.Join(a)
	if b.At(0) != 2 || b.At(2) != 1 {
		t.Fatalf("join result = %v", b)
	}
	if !a.LE(b) {
		t.Fatal("a must be <= join(a,b)")
	}
	if b.LE(a) {
		t.Fatal("b has a component a lacks")
	}
}

func TestConcurrent(t *testing.T) {
	a := New(2)
	a.Tick(0)
	b := New(2)
	b.Tick(1)
	if !a.Concurrent(b) {
		t.Fatal("independent ticks must be concurrent")
	}
	c := a.Copy()
	c.Join(b)
	if a.Concurrent(c) || !a.LE(c) {
		t.Fatal("a happens-before join(a,b)")
	}
}

func TestCopyIndependent(t *testing.T) {
	a := New(2)
	a.Tick(0)
	c := a.Copy()
	c.Tick(0)
	if a.At(0) != 1 || c.At(0) != 2 {
		t.Fatal("copy is not independent")
	}
}

// Join is the least upper bound: a ≤ join and b ≤ join, and join is
// minimal among upper bounds.
func TestJoinQuick(t *testing.T) {
	f := func(xs, ys [4]uint8) bool {
		a, b := New(4), New(4)
		for i := 0; i < 4; i++ {
			a[i], b[i] = int64(xs[i]), int64(ys[i])
		}
		j := a.Copy()
		j.Join(b)
		if !a.LE(j) || !b.LE(j) {
			return false
		}
		for i := range j {
			if j[i] != max64(a[i], b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestString(t *testing.T) {
	a := New(3)
	a.Tick(1)
	if got := a.String(); got != "<0,1,0>" {
		t.Fatalf("String = %q", got)
	}
}
