// Package vclock implements fixed-width vector clocks for the
// happens-before analysis used to validate transformed traces.
package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector clock over a fixed number of threads.
type VC []int64

// New returns a zero clock for n threads.
func New(n int) VC { return make(VC, n) }

// Copy returns an independent copy of v.
func (v VC) Copy() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Tick increments the component of thread t.
func (v VC) Tick(t int32) { v[t]++ }

// At returns the component of thread t.
func (v VC) At(t int32) int64 { return v[t] }

// Join sets v to the component-wise maximum of v and o.
func (v VC) Join(o VC) {
	for i := range o {
		if i >= len(v) {
			break
		}
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// LE reports whether v happens-before-or-equals o (component-wise ≤).
func (v VC) LE(o VC) bool {
	for i := range v {
		ov := int64(0)
		if i < len(o) {
			ov = o[i]
		}
		if v[i] > ov {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither clock orders the other.
func (v VC) Concurrent(o VC) bool { return !v.LE(o) && !o.LE(v) }

// String renders the clock as <a,b,c>.
func (v VC) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "<" + strings.Join(parts, ",") + ">"
}
