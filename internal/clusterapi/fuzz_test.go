package clusterapi

import (
	"encoding/json"
	"testing"
	"unicode/utf8"
)

// FuzzDecodeError hammers the error-body decoder with arbitrary bytes.
// DecodeError sits on every cluster client path — admission redirects,
// cache probes, shard fan-out all parse peer error bodies through it —
// and a peer mid-crash (or a proxy in between) can hand back anything.
// The contract under fuzz: never panic, and any non-nil result must be
// a usable error — a non-empty Error() string that round-trips through
// the envelope encoding without changing meaning.
func FuzzDecodeError(f *testing.F) {
	// The documented envelope form.
	f.Add([]byte(`{"error":{"code":"queue_full","message":"queue full (8 queued)"}}`))
	// The legacy pre-envelope string form.
	f.Add([]byte(`{"error":"shard executor busy"}`))
	// Near-misses the decoder must reject, not misread.
	f.Add([]byte(`{"error":{"code":"queue_full","message":""}}`))
	f.Add([]byte(`{"error":{}}`))
	f.Add([]byte(`{"error":null}`))
	f.Add([]byte(`{"error":42}`))
	f.Add([]byte(`{}`))
	// Truncated envelope and plain garbage.
	f.Add([]byte(`{"error":{"code":"queue_f`))
	f.Add([]byte(`<html>502 Bad Gateway</html>`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, body []byte) {
		e := DecodeError(body)
		if e == nil {
			return
		}
		// A decoded error must be usable as an error value.
		if e.Message == "" {
			t.Fatalf("DecodeError(%q) returned an APIError with an empty message", body)
		}
		if e.Error() == "" {
			t.Fatalf("DecodeError(%q) returned an error that renders empty", body)
		}
		// Round-trip: re-encoding through the documented envelope and
		// decoding again must preserve code and message. JSON decoding
		// replaces invalid UTF-8, so only well-formed strings round-trip
		// byte-for-byte.
		if !utf8.ValidString(string(e.Code)) || !utf8.ValidString(e.Message) {
			return
		}
		wire, err := json.Marshal(Envelope{Err: *e})
		if err != nil {
			t.Fatalf("decoded error %+v does not re-encode: %v", e, err)
		}
		again := DecodeError(wire)
		if again == nil {
			t.Fatalf("re-encoded error %s does not decode", wire)
		}
		if again.Code != e.Code || again.Message != e.Message {
			t.Fatalf("round-trip changed the error: %+v -> %+v", e, again)
		}
	})
}
