package clusterapi

import (
	"encoding/json"
	"fmt"
)

// ErrorCode is a machine-readable API error identifier. Codes are the
// stable contract — messages are for humans and may change freely —
// and are documented per route in docs/API.md.
type ErrorCode string

// The documented error codes. Every non-2xx perfplayd response body
// carries exactly one of these.
const (
	// CodeBadRequest covers malformed request syntax: bad JSON, bad
	// query parameters, invalid flag combinations.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeUnknownWorkload rejects an analyze request naming an app the
	// node has no recorder for.
	CodeUnknownWorkload ErrorCode = "unknown_workload"
	// CodeInvalidTrace rejects an uploaded or referenced trace that
	// fails to parse or sniff as any supported format.
	CodeInvalidTrace ErrorCode = "invalid_trace"
	// CodeBodyTooLarge rejects a request body over the route's byte
	// bound.
	CodeBodyTooLarge ErrorCode = "body_too_large"
	// CodeQueueFull means admission failed: the pending-job queue is at
	// capacity. The response may carry a Retry-Peer header naming an
	// idler node.
	CodeQueueFull ErrorCode = "queue_full"
	// CodeTraceBacklogFull means admission failed on the queued-trace
	// byte budget rather than the job count.
	CodeTraceBacklogFull ErrorCode = "trace_backlog_full"
	// CodeJobNotFound means the job ID is unknown to this node.
	CodeJobNotFound ErrorCode = "job_not_found"
	// CodeTraceNotFound means the corpus has no blob for the digest.
	CodeTraceNotFound ErrorCode = "trace_not_found"
	// CodeTraceUntracked means the job predates tracing and has no
	// span timeline.
	CodeTraceUntracked ErrorCode = "trace_untracked"
	// CodeCacheMiss means the probed cache key is not resident here.
	CodeCacheMiss ErrorCode = "cache_miss"
	// CodeCorpusDisabled means the node runs without a corpus
	// directory, so content-addressed trace routes are unavailable.
	CodeCorpusDisabled ErrorCode = "corpus_disabled"
	// CodeCorpusFull means the corpus byte budget cannot admit the
	// blob even after eviction.
	CodeCorpusFull ErrorCode = "corpus_full"
	// CodeDigestMismatch means a pushed blob hashed to a different
	// digest than its URL claimed.
	CodeDigestMismatch ErrorCode = "digest_mismatch"
	// CodeRangeOutOfBounds rejects a shard request whose lock-group
	// range exceeds the trace's group count.
	CodeRangeOutOfBounds ErrorCode = "range_out_of_bounds"
	// CodeShardBusy means the shard executor is at its concurrent
	// request bound; retry later.
	CodeShardBusy ErrorCode = "shard_busy"
	// CodeLeaseExpired rejects a stolen-job result reported after the
	// victim's lease ran out (the job was re-enqueued; the late result
	// is discarded).
	CodeLeaseExpired ErrorCode = "lease_expired"
	// CodeShuttingDown means the node is draining and admits nothing.
	CodeShuttingDown ErrorCode = "shutting_down"
	// CodeInternal is an unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
)

// APIError is the body of every non-2xx perfplayd response:
//
//	{"error": {"code": "queue_full", "message": "queue full (8 queued)"}}
//
// Code is machine-readable and stable; Message is human prose.
type APIError struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// Error implements the error interface: "queue_full: queue full (8
// queued)".
func (e *APIError) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Envelope is the wrapper object the wire carries.
type Envelope struct {
	Err APIError `json:"error"`
}

// NewError builds an APIError with a formatted message.
func NewError(code ErrorCode, format string, args ...any) *APIError {
	return &APIError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// DecodeError parses a response body into an *APIError. It accepts the
// documented envelope and, for compatibility with pre-envelope nodes
// during a rolling upgrade, the legacy {"error": "<message>"} string
// form (decoded with an empty Code). Returns nil when the body is not
// a recognizable error payload.
func DecodeError(body []byte) *APIError {
	var env struct {
		Err json.RawMessage `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || len(env.Err) == 0 {
		return nil
	}
	var apiErr APIError
	if err := json.Unmarshal(env.Err, &apiErr); err == nil && apiErr.Message != "" {
		return &apiErr
	}
	var legacy string
	if err := json.Unmarshal(env.Err, &legacy); err == nil && legacy != "" {
		return &APIError{Message: legacy}
	}
	return nil
}
