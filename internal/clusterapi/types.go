// Package clusterapi holds the wire types spoken between perfplayd
// nodes — job specs, steal-protocol bodies, gossip status — and the
// documented error envelope every route returns. It exists so the
// policy packages (internal/scheduler, internal/pipeline) and the
// transports that carry them (the daemon's HTTP client code, the
// clustersim in-memory transport) can share one vocabulary without the
// policy code importing net/http.
package clusterapi

import (
	"encoding/json"
	"strings"
	"time"
)

// Spec is the wire-shippable description of one whole analysis job —
// everything a thief needs to reproduce the job's output bit-for-bit on
// its own pipeline. Exactly one of App or TraceDigest identifies the
// input: a registered workload name, or the content digest of a trace
// stored in the victim's corpus (the thief fetches the blob by digest
// when its own corpus misses it, verifying the hash on arrival).
//
// Jobs whose input is neither — an uploaded trace held only in victim
// memory — have a zero Spec and are not stealable.
type Spec struct {
	// App names a registered workload (mutually exclusive with
	// TraceDigest).
	App string `json:"app,omitempty"`
	// TraceDigest is the corpus content address ("sha256:...") of the
	// job's trace. The victim serving the claim is always a valid
	// source for the blob (GET /traces/{digest}).
	TraceDigest string `json:"trace,omitempty"`
	// Threads, Input, Scale and Seed parameterize workload recording;
	// they are inert for trace jobs but ship anyway so the thief's
	// cache keys match the victim's.
	Threads int     `json:"threads,omitempty"`
	Input   int     `json:"input,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	// TopK, Schemes and Races are the reporting options.
	TopK    int  `json:"top,omitempty"`
	Schemes bool `json:"schemes,omitempty"`
	Races   bool `json:"races,omitempty"`
}

// Stealable reports whether the spec describes a job a peer could
// reproduce — i.e. whether its input is content-addressed rather than
// held in the owner's memory.
func (s Spec) Stealable() bool { return s.App != "" || s.TraceDigest != "" }

// StolenJob is what a successful claim hands the thief: the victim's
// job ID (the thief reports the result back under it) and the spec to
// execute.
type StolenJob struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
	// LeaseMS is the victim's lease in milliseconds: the thief must
	// report a result within it or the victim re-runs the job itself.
	LeaseMS int64 `json:"lease_ms"`
	// Trace and Span carry the job's distributed-tracing context across
	// the steal: the thief adopts Trace as its trace ID and Span (the
	// victim's claim span) as the parent of the spans it records, so the
	// stolen execution lands on the same timeline the submit started.
	Trace string `json:"trace_id,omitempty"`
	Span  string `json:"span_id,omitempty"`
}

// PeerStatus is one gossip entry: a peer's queue depth and cache
// population as last observed by this node's stealer.
type PeerStatus struct {
	// QueueLen counts the peer's queued (unclaimed) jobs.
	QueueLen int `json:"queue_len"`
	// QueueCap is the peer's admission bound; QueueLen >= QueueCap
	// means the peer would 503 a submit right now. Zero means the peer
	// predates the field (unknown).
	QueueCap int `json:"queue_cap,omitempty"`
	// Stealable counts how many queued jobs a thief could claim.
	Stealable int `json:"stealable"`
	// StealableDigests are the trace digests of the peer's stealable
	// queued jobs, newest first (the claim order), bounded by the
	// victim. A thief holding cached artifacts for one of these digests
	// can steal a zero-replay job; advisory and racy like every hint —
	// the job may be popped or claimed by the time the thief arrives.
	StealableDigests []string `json:"stealable_digests,omitempty"`
	// CacheKeys are the peer's most recently used result-cache keys —
	// cache-population hints that let a cluster cache probe target the
	// node most likely to hold a key. Advisory and possibly stale: a
	// hinted key may have been evicted by the time it is probed, and
	// the prober must treat a 404 as an ordinary miss.
	CacheKeys []string `json:"cache_keys,omitempty"`
	// Seen is when this observation was made.
	Seen time.Time `json:"seen"`
	// Err is the probe failure, if the last probe failed (the counts
	// are then stale).
	Err string `json:"err,omitempty"`
}

// HintsKey reports whether the peer's gossiped cache hints include the
// given cache key.
func (st PeerStatus) HintsKey(key string) bool {
	for _, k := range st.CacheKeys {
		if k == key {
			return true
		}
	}
	return false
}

// HintsDigest reports whether any gossiped cache key belongs to the
// given content digest (cache keys lead with their source digest).
// Useful for artifacts keyed more coarsely than results — a peer
// hinting *any* result for a trace ran the identify pass and therefore
// holds that trace's verdict table, whatever reporting flags its job
// used.
func (st PeerStatus) HintsDigest(digest string) bool {
	for _, k := range st.CacheKeys {
		if strings.HasPrefix(k, digest+"|") {
			return true
		}
	}
	return false
}

// StealResult is the wire body a thief POSTs back to the victim
// (POST /jobs/{id}/result) when a stolen job finishes. Summary stays
// raw bytes at this layer: its schema belongs to the daemon's report
// types, and the transport only carries it.
type StealResult struct {
	// Thief is the reporting node's advertised base URL.
	Thief string `json:"thief"`
	// Error is the execution failure, empty on success.
	Error string `json:"error,omitempty"`
	// Summary is the finished job summary (daemon jobSummary JSON),
	// present exactly when Error is empty.
	Summary json.RawMessage `json:"summary,omitempty"`
	// Spans are the thief-side telemetry spans recorded during the
	// stolen execution (a telemetry.Span array), grafted onto the
	// victim's job timeline.
	Spans json.RawMessage `json:"spans,omitempty"`
}
