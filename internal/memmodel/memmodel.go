// Package memmodel implements the simulated shared-memory substrate.
//
// The simulator exposes a flat address space of 64-bit cells. Workloads
// allocate named cells (so traces and reports can speak in terms of the
// variables the paper's examples use, e.g. "fil_system.unflushed_spaces"),
// and the recorder snapshots/diffs memory for selective recording.
package memmodel

import (
	"fmt"
	"sort"
)

// Addr identifies a shared memory cell.
type Addr uint32

// NoAddr is the zero Addr; cell 0 is never allocated.
const NoAddr Addr = 0

// Memory is a simulated shared address space.
//
// Memory is not internally synchronized: the simulator guarantees only one
// virtual thread executes at a time, so plain maps suffice and every
// access stays deterministic.
type Memory struct {
	cells map[Addr]int64
	names map[Addr]string
	byNam map[string]Addr
	next  Addr
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{
		cells: make(map[Addr]int64),
		names: make(map[Addr]string),
		byNam: make(map[string]Addr),
		next:  1,
	}
}

// Reset returns the address space to its freshly-constructed state,
// keeping the maps' capacity. Replay engines recycled through a pool
// use it instead of allocating a new Memory per run.
func (m *Memory) Reset() {
	clear(m.cells)
	clear(m.names)
	clear(m.byNam)
	m.next = 1
}

// Alloc reserves a fresh cell with the given debug name and initial value.
// Allocating the same name twice returns the existing cell (workload
// builders use this to share variables between thread bodies).
func (m *Memory) Alloc(name string, init int64) Addr {
	if a, ok := m.byNam[name]; ok {
		return a
	}
	a := m.next
	m.next++
	m.cells[a] = init
	m.names[a] = name
	m.byNam[name] = a
	return a
}

// AllocN reserves n consecutive anonymous cells (an "array") under a base
// name; element i is named base[i].
func (m *Memory) AllocN(base string, n int, init int64) []Addr {
	addrs := make([]Addr, n)
	for i := range addrs {
		addrs[i] = m.Alloc(fmt.Sprintf("%s[%d]", base, i), init)
	}
	return addrs
}

// Load returns the value of cell a. Loading an unallocated cell returns 0,
// mirroring zero-initialized memory.
func (m *Memory) Load(a Addr) int64 { return m.cells[a] }

// Store sets cell a to v.
func (m *Memory) Store(a Addr, v int64) { m.cells[a] = v }

// Name returns the debug name of a cell, or "addr#N" if anonymous.
func (m *Memory) Name(a Addr) string {
	if n, ok := m.names[a]; ok {
		return n
	}
	return fmt.Sprintf("addr#%d", a)
}

// Lookup resolves a debug name to its address.
func (m *Memory) Lookup(name string) (Addr, bool) {
	a, ok := m.byNam[name]
	return a, ok
}

// Len reports how many cells are allocated.
func (m *Memory) Len() int { return len(m.cells) }

// Names returns the address → debug-name table; callers must not mutate.
func (m *Memory) Names() map[Addr]string { return m.names }

// Snapshot captures the full state of memory. Snapshots feed selective
// recording (record state before/after a skipped range) and the replay
// engine's final-state comparison used by the benign-ULCP reversed replay.
type Snapshot map[Addr]int64

// Snapshot returns a copy of the current cell values.
func (m *Memory) Snapshot() Snapshot {
	s := make(Snapshot, len(m.cells))
	for a, v := range m.cells {
		s[a] = v
	}
	return s
}

// Restore overwrites memory with the snapshot's contents. Cells absent
// from the snapshot are cleared to zero.
func (m *Memory) Restore(s Snapshot) {
	for a := range m.cells {
		m.cells[a] = 0
	}
	for a, v := range s {
		m.cells[a] = v
	}
}

// Equal reports whether two snapshots contain identical non-zero state.
func (s Snapshot) Equal(o Snapshot) bool {
	return len(s.Diff(o)) == 0
}

// Diff returns the addresses whose values differ between s and o, in
// ascending order. Zero-valued and absent cells compare equal.
func (s Snapshot) Diff(o Snapshot) []Addr {
	seen := make(map[Addr]struct{}, len(s)+len(o))
	var out []Addr
	for a, v := range s {
		seen[a] = struct{}{}
		if o[a] != v {
			out = append(out, a)
		}
	}
	for a, v := range o {
		if _, ok := seen[a]; ok {
			continue
		}
		if v != 0 {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Delta is the state change of a set of cells across a skipped range, the
// unit of selective recording: "record the changes of the states and
// values of memory before and after running a specific code range".
type Delta struct {
	Before Snapshot
	After  Snapshot
}

// Apply installs the post-state of the delta into memory, bypassing
// re-execution of the skipped range.
func (d Delta) Apply(m *Memory) {
	for a, v := range d.After {
		m.Store(a, v)
	}
}

// Touched returns the set of cells the delta changes.
func (d Delta) Touched() []Addr {
	var out []Addr
	for a, v := range d.After {
		if d.Before[a] != v {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
