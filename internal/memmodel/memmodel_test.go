package memmodel

import (
	"testing"
	"testing/quick"
)

func TestAllocAndAccess(t *testing.T) {
	m := New()
	x := m.Alloc("x", 5)
	y := m.Alloc("y", 0)
	if x == y || x == NoAddr {
		t.Fatal("allocation broken")
	}
	if m.Load(x) != 5 || m.Load(y) != 0 {
		t.Fatal("initial values wrong")
	}
	m.Store(y, 9)
	if m.Load(y) != 9 {
		t.Fatal("store lost")
	}
	if m.Name(x) != "x" {
		t.Fatalf("Name = %q", m.Name(x))
	}
	if m.Name(Addr(999)) == "" {
		t.Fatal("anonymous name empty")
	}
	if got, ok := m.Lookup("x"); !ok || got != x {
		t.Fatal("Lookup broken")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestAllocIdempotentByName(t *testing.T) {
	m := New()
	a := m.Alloc("same", 1)
	b := m.Alloc("same", 2) // existing cell, init ignored
	if a != b {
		t.Fatal("same name must return same cell")
	}
	if m.Load(a) != 1 {
		t.Fatal("realloc must not clobber value")
	}
}

func TestAllocN(t *testing.T) {
	m := New()
	cells := m.AllocN("arr", 4, 7)
	if len(cells) != 4 {
		t.Fatalf("AllocN = %d cells", len(cells))
	}
	for i, c := range cells {
		if m.Load(c) != 7 {
			t.Errorf("cell %d init wrong", i)
		}
	}
	if m.Name(cells[2]) != "arr[2]" {
		t.Errorf("Name = %q", m.Name(cells[2]))
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := New()
	x := m.Alloc("x", 1)
	s := m.Snapshot()
	m.Store(x, 42)
	if m.Load(x) != 42 {
		t.Fatal("store lost")
	}
	m.Restore(s)
	if m.Load(x) != 1 {
		t.Fatal("restore failed")
	}
}

func TestSnapshotDiffEqual(t *testing.T) {
	a := Snapshot{1: 5, 2: 0}
	b := Snapshot{1: 5}
	if !a.Equal(b) {
		t.Fatal("zero-valued cells must compare equal to absent cells")
	}
	c := Snapshot{1: 6}
	if a.Equal(c) {
		t.Fatal("different values must not be equal")
	}
	d := a.Diff(c)
	if len(d) != 1 || d[0] != 1 {
		t.Fatalf("Diff = %v", d)
	}
}

// Diff is symmetric in content and empty iff Equal.
func TestDiffQuick(t *testing.T) {
	f := func(xs, ys [6]int8) bool {
		a, b := Snapshot{}, Snapshot{}
		for i, v := range xs {
			if v != 0 {
				a[Addr(i)] = int64(v)
			}
		}
		for i, v := range ys {
			if v != 0 {
				b[Addr(i)] = int64(v)
			}
		}
		dab, dba := a.Diff(b), b.Diff(a)
		if len(dab) != len(dba) {
			return false
		}
		for i := range dab {
			if dab[i] != dba[i] {
				return false
			}
		}
		return a.Equal(b) == (len(dab) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaApplyTouched(t *testing.T) {
	m := New()
	x := m.Alloc("x", 1)
	y := m.Alloc("y", 2)
	d := Delta{Before: Snapshot{x: 1, y: 2}, After: Snapshot{x: 10, y: 2}}
	if got := d.Touched(); len(got) != 1 || got[0] != x {
		t.Fatalf("Touched = %v", got)
	}
	d.Apply(m)
	if m.Load(x) != 10 || m.Load(y) != 2 {
		t.Fatal("Apply wrong")
	}
}
