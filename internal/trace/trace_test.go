package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"perfplay/internal/memmodel"
	"perfplay/internal/vtime"
)

func TestRegionOverlapMerge(t *testing.T) {
	a := Region{File: "f.c", StartLine: 10, EndLine: 20}
	b := Region{File: "f.c", StartLine: 15, EndLine: 30}
	c := Region{File: "f.c", StartLine: 21, EndLine: 25}
	d := Region{File: "g.c", StartLine: 10, EndLine: 20}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c should not overlap (disjoint lines)")
	}
	if a.Overlaps(d) {
		t.Error("a and d should not overlap (different files)")
	}
	m := a.Merge(b)
	if m.StartLine != 10 || m.EndLine != 30 {
		t.Errorf("merge = %v, want 10-30", m)
	}
	if !a.Merge(Region{}).Overlaps(a) {
		t.Error("merging with empty should keep a")
	}
}

func TestRegionExtend(t *testing.T) {
	var r Region
	r = r.Extend(Site{File: "f.c", Line: 5})
	r = r.Extend(Site{File: "f.c", Line: 9})
	r = r.Extend(Site{File: "f.c", Line: 2})
	if r.StartLine != 2 || r.EndLine != 9 {
		t.Fatalf("region = %v, want f.c:2-9", r)
	}
}

func TestSiteTableIntern(t *testing.T) {
	st := NewSiteTable()
	a := st.Intern(Site{File: "x.c", Line: 1})
	b := st.Intern(Site{File: "x.c", Line: 2})
	c := st.Intern(Site{File: "x.c", Line: 1})
	if a == b {
		t.Error("distinct sites must get distinct IDs")
	}
	if a != c {
		t.Error("identical sites must be interned to one ID")
	}
	if st.At(a).Line != 1 {
		t.Errorf("At(a) = %v", st.At(a))
	}
	if st.At(9999).File != "<unknown>" {
		t.Error("out-of-range ID should resolve to unknown site")
	}
}

func TestLockIDString(t *testing.T) {
	if got := LockID(3).String(); got != "L3" {
		t.Errorf("got %q", got)
	}
	if got := (AuxLockBase + 7).String(); got != "@L7" {
		t.Errorf("got %q", got)
	}
	if !(AuxLockBase + 1).IsAux() || LockID(5).IsAux() {
		t.Error("IsAux misclassifies")
	}
}

// buildSample constructs a small two-thread trace with one lock and two
// critical sections for extraction tests.
func buildSample() *Trace {
	tr := New("sample", 2)
	s1 := tr.Sites.Intern(Site{File: "a.c", Line: 10, Func: "f"})
	s2 := tr.Sites.Intern(Site{File: "a.c", Line: 20, Func: "g"})
	l := LockID(1)
	tr.Append(Event{Thread: 0, Kind: KThreadStart})
	tr.Append(Event{Thread: 1, Kind: KThreadStart})
	tr.Append(Event{Thread: 0, Kind: KLockAcq, Lock: l, Time: 10, Site: s1})
	tr.Append(Event{Thread: 0, Kind: KRead, Addr: 1, Value: 5, Time: 20, Site: s1})
	tr.Append(Event{Thread: 0, Kind: KLockRel, Lock: l, Time: 30, Site: s1})
	tr.Append(Event{Thread: 1, Kind: KLockAcq, Lock: l, Time: 40, Site: s2})
	tr.Append(Event{Thread: 1, Kind: KWrite, Addr: 2, Value: 7, Op: WSet, Time: 50, Site: s2})
	tr.Append(Event{Thread: 1, Kind: KLockRel, Lock: l, Time: 60, Site: s2})
	tr.Append(Event{Thread: 0, Kind: KThreadEnd, Time: 30})
	tr.Append(Event{Thread: 1, Kind: KThreadEnd, Time: 60})
	tr.TotalTime = 60
	return tr
}

func TestExtractCS(t *testing.T) {
	tr := buildSample()
	css := tr.ExtractCS()
	if len(css) != 2 {
		t.Fatalf("extracted %d CSs, want 2", len(css))
	}
	a, b := css[0], css[1]
	if a.Thread != 0 || b.Thread != 1 {
		t.Fatalf("threads = %d,%d", a.Thread, b.Thread)
	}
	if _, ok := a.Reads[1]; !ok {
		t.Error("CS0 should have read addr 1")
	}
	if len(a.Writes) != 0 {
		t.Error("CS0 should have no writes")
	}
	if _, ok := b.Writes[2]; !ok {
		t.Error("CS1 should have written addr 2")
	}
	if a.SeqInLock != 0 || b.SeqInLock != 1 {
		t.Errorf("seq = %d,%d", a.SeqInLock, b.SeqInLock)
	}
	if a.Region.StartLine != 10 || b.Region.StartLine != 20 {
		t.Errorf("regions = %v,%v", a.Region, b.Region)
	}
	if a.RelEv < 0 || b.RelEv < 0 {
		t.Error("release events not matched")
	}
}

func TestExtractCSNested(t *testing.T) {
	tr := New("nested", 1)
	l1, l2 := LockID(1), LockID(2)
	tr.Append(Event{Thread: 0, Kind: KLockAcq, Lock: l1, Time: 1})
	tr.Append(Event{Thread: 0, Kind: KLockAcq, Lock: l2, Time: 2})
	tr.Append(Event{Thread: 0, Kind: KWrite, Addr: 9, Time: 3})
	tr.Append(Event{Thread: 0, Kind: KLockRel, Lock: l2, Time: 4})
	tr.Append(Event{Thread: 0, Kind: KLockRel, Lock: l1, Time: 5})
	css := tr.ExtractCS()
	if len(css) != 2 {
		t.Fatalf("extracted %d CSs, want 2", len(css))
	}
	for _, cs := range css {
		if _, ok := cs.Writes[9]; !ok {
			t.Errorf("nested write must attribute to %v", cs)
		}
	}
}

func TestValidateCatchesBadNesting(t *testing.T) {
	tr := New("bad", 1)
	tr.Append(Event{Thread: 0, Kind: KLockRel, Lock: 1})
	if err := tr.Validate(); err == nil {
		t.Fatal("release-without-acquire must fail validation")
	}
	tr2 := New("bad2", 1)
	tr2.Append(Event{Thread: 0, Kind: KLockAcq, Lock: 1})
	if err := tr2.Validate(); err == nil {
		t.Fatal("unreleased lock must fail validation")
	}
	tr3 := New("bad3", 1)
	tr3.Append(Event{Thread: 5, Kind: KCompute})
	if err := tr3.Validate(); err == nil {
		t.Fatal("out-of-range thread must fail validation")
	}
}

func TestLockOrderAndSharedOrder(t *testing.T) {
	tr := buildSample()
	lo := tr.LockOrder()
	if got := lo[1]; len(got) != 2 || got[0] > got[1] {
		t.Fatalf("lock order = %v", got)
	}
	so := tr.SharedOrder()
	if len(so) != 2 {
		t.Fatalf("shared order = %v, want 2 accesses", so)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := buildSample()
	tr.InitMem = memmodel.Snapshot{1: 5}
	tr.FinalMem = memmodel.Snapshot{2: 7}
	tr.MemNames[1] = "x"
	tr.SpinLocks[1] = true
	tr.Constraints = []Constraint{{After: 2, Before: 5}}
	tr.Events[6].Locks = []LockID{AuxLockBase + 1, AuxLockBase + 2}
	tr.Events[6].Sources = []int32{-1, 4}

	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTraceEqual(t, tr, got)
}

func TestJSONRoundTrip(t *testing.T) {
	tr := buildSample()
	tr.MemNames[1] = "x"
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTraceEqual(t, tr, got)
}

func assertTraceEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if got.App != want.App || got.NumThreads != want.NumThreads || got.TotalTime != want.TotalTime {
		t.Fatalf("header mismatch: %s/%d/%v vs %s/%d/%v",
			got.App, got.NumThreads, got.TotalTime, want.App, want.NumThreads, want.TotalTime)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("event count %d, want %d", len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		w, g := want.Events[i], got.Events[i]
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("event %d: got %+v, want %+v", i, g, w)
		}
	}
	if !reflect.DeepEqual(got.Constraints, want.Constraints) {
		t.Fatalf("constraints: got %v, want %v", got.Constraints, want.Constraints)
	}
	if want.Sites.Len() != got.Sites.Len() {
		t.Fatalf("site tables differ in size")
	}
	for i := 0; i < want.Sites.Len(); i++ {
		if want.Sites.At(SiteID(i)) != got.Sites.At(SiteID(i)) {
			t.Fatalf("site %d differs", i)
		}
	}
}

// TestBinaryRoundTripQuick property-tests the binary codec over randomized
// event sequences.
func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New("q", 4)
		kinds := []Kind{KCompute, KLockAcq, KLockRel, KRead, KWrite, KSleep}
		for i := 0; i < int(n); i++ {
			e := Event{
				Thread: int32(rng.Intn(4)),
				Kind:   kinds[rng.Intn(len(kinds))],
				Lock:   LockID(rng.Intn(5)),
				Addr:   memmodel.Addr(rng.Intn(100)),
				Value:  rng.Int63n(1000) - 500,
				Op:     WriteOp(rng.Intn(4)),
				Cost:   vtime.Duration(1 + rng.Int63n(1000)),
				Time:   vtime.Time(rng.Int63n(100000)),
				Site:   SiteID(rng.Intn(3)),
				Spin:   rng.Intn(2) == 0,
			}
			tr.Append(e)
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if !reflect.DeepEqual(tr.Events[i], got.Events[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRegionMergeQuick: merge is commutative on overlap and always covers
// both inputs.
func TestRegionMergeQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 uint16) bool {
		ra := Region{File: "f", StartLine: int(min16(a1, a2)), EndLine: int(max16(a1, a2))}
		rb := Region{File: "f", StartLine: int(min16(b1, b2)), EndLine: int(max16(b1, b2))}
		m := ra.Merge(rb)
		if m.StartLine > ra.StartLine || m.EndLine < ra.EndLine {
			return false
		}
		if m.StartLine > rb.StartLine || m.EndLine < rb.EndLine {
			return false
		}
		m2 := rb.Merge(ra)
		return m == m2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}
