package trace

import (
	"fmt"
	"io"
	"os"
)

// ReadAny decodes a trace in either the binary or the JSON encoding,
// sniffing the format by attempting binary first (it is guarded by a
// magic number) and falling back to JSON. This is the loader every
// consumer of on-disk or uploaded traces shares — the CLI's -replay and
// -diff paths and the analysis daemon's trace upload endpoint.
func ReadAny(r io.ReadSeeker) (*Trace, error) {
	tr, berr := ReadBinary(r)
	if berr == nil {
		return tr, nil
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, berr
	}
	tr, jerr := ReadJSON(r)
	if jerr != nil {
		return nil, fmt.Errorf("trace: neither binary (%v) nor JSON (%v)", berr, jerr)
	}
	return tr, nil
}

// ReadFile loads a trace file in either encoding.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAny(f)
}
