package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Encoding names for the on-disk trace formats, as reported by
// DetectFormat and recorded in corpus metadata.
const (
	FormatBinary   = "binary"
	FormatJSON     = "json"
	FormatColumnar = "columnar"
)

// DetectFormat reports which encoding raw trace bytes carry, by the
// magic numbers of the two binary formats. Anything without a magic is
// assumed JSON; whether it actually parses is ReadAny's job.
func DetectFormat(data []byte) string {
	if len(data) >= 4 {
		switch binary.LittleEndian.Uint32(data) {
		case binMagic:
			return FormatBinary
		case colMagic:
			return FormatColumnar
		}
	}
	return FormatJSON
}

// ReadAny decodes a trace in the row-binary, columnar, or JSON
// encoding, sniffing the format by attempting the magic-guarded binary
// formats first and falling back to JSON. This is the loader every
// consumer of on-disk or uploaded traces shares — the CLI's -replay and
// -diff paths and the analysis daemon's trace upload endpoint.
func ReadAny(r io.ReadSeeker) (*Trace, error) {
	tr, berr := ReadBinary(r)
	if berr == nil {
		return tr, nil
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, berr
	}
	tr, cerr := ReadColumnar(r)
	if cerr == nil {
		return tr, nil
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, cerr
	}
	tr, jerr := ReadJSON(r)
	if jerr != nil {
		return nil, fmt.Errorf("trace: neither binary (%v), columnar (%v), nor JSON (%v)", berr, cerr, jerr)
	}
	return tr, nil
}

// ReadFile loads a trace file in either encoding.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAny(f)
}
