package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Encoding names for the two on-disk trace formats, as reported by
// DetectFormat and recorded in corpus metadata.
const (
	FormatBinary = "binary"
	FormatJSON   = "json"
)

// DetectFormat reports which encoding raw trace bytes carry, by the
// binary format's magic number. Anything without the magic is assumed
// JSON; whether it actually parses is ReadAny's job.
func DetectFormat(data []byte) string {
	if len(data) >= 4 && binary.LittleEndian.Uint32(data) == binMagic {
		return FormatBinary
	}
	return FormatJSON
}

// ReadAny decodes a trace in either the binary or the JSON encoding,
// sniffing the format by attempting binary first (it is guarded by a
// magic number) and falling back to JSON. This is the loader every
// consumer of on-disk or uploaded traces shares — the CLI's -replay and
// -diff paths and the analysis daemon's trace upload endpoint.
func ReadAny(r io.ReadSeeker) (*Trace, error) {
	tr, berr := ReadBinary(r)
	if berr == nil {
		return tr, nil
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, berr
	}
	tr, jerr := ReadJSON(r)
	if jerr != nil {
		return nil, fmt.Errorf("trace: neither binary (%v) nor JSON (%v)", berr, jerr)
	}
	return tr, nil
}

// ReadFile loads a trace file in either encoding.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAny(f)
}
