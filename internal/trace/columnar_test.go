package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"

	"perfplay/internal/memmodel"
)

// buildRichSample extends buildSample with the features the columnar
// sidecars carry: lockset-acquire events (Locks/Sources), a skip event
// with a delta snapshot, constraints, named memory, spin locks, and
// memory images.
func buildRichSample() *Trace {
	tr := buildSample()
	tr.MemNames[1] = "counter"
	tr.MemNames[2] = "flag"
	tr.SpinLocks[LockID(1)] = true
	tr.InitMem = memmodel.Snapshot{1: 5, 2: 0}
	tr.FinalMem = memmodel.Snapshot{1: 5, 2: 7}
	tr.Constraints = []Constraint{{After: 2, Before: 5}}
	tr.Append(Event{Thread: 0, Kind: KLocksetAcq, Locks: []LockID{1, 2}, Sources: []int32{2, 5}, Time: 70})
	tr.Append(Event{Thread: 0, Kind: KSkip, Delta: memmodel.Snapshot{2: 9}, Cost: 3, Time: 80})
	tr.Append(Event{Thread: 1, Kind: KCompute, Cost: 11, Time: 90})
	tr.TotalTime = 90
	return tr
}

// canonical reduces a trace to its row-binary encoding, the common
// currency for cross-format equality checks.
func canonical(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatalf("canonical encode: %v", err)
	}
	return buf.Bytes()
}

func TestColumnarRoundTrip(t *testing.T) {
	for name, tr := range map[string]*Trace{
		"sample": buildSample(),
		"rich":   buildRichSample(),
		"empty":  New("empty", 0),
	} {
		t.Run(name, func(t *testing.T) {
			var col bytes.Buffer
			if err := tr.WriteColumnar(&col); err != nil {
				t.Fatal(err)
			}
			got, err := ReadColumnar(bytes.NewReader(col.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canonical(t, got), canonical(t, tr)) {
				t.Fatal("columnar round trip is not field-identical to the original")
			}
		})
	}
}

// TestColumnarAccessors checks the zero-copy field accessors against the
// materialized events, field by field.
func TestColumnarAccessors(t *testing.T) {
	tr := buildRichSample()
	var buf bytes.Buffer
	if err := tr.WriteColumnar(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := ParseColumnar(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEvents() != len(tr.Events) || c.App() != tr.App || c.NumThreads() != tr.NumThreads {
		t.Fatalf("header mismatch: %d events, app %q, %d threads", c.NumEvents(), c.App(), c.NumThreads())
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		if c.Thread(i) != e.Thread || c.Kind(i) != e.Kind || c.Spin(i) != e.Spin ||
			c.Op(i) != e.Op || c.Lock(i) != e.Lock || c.Addr(i) != e.Addr ||
			c.Value(i) != e.Value || c.Cost(i) != e.Cost || c.Time(i) != e.Time ||
			c.Site(i) != e.Site {
			t.Fatalf("accessor mismatch at event %d: %+v", i, *e)
		}
		if got := c.Event(i); !reflect.DeepEqual(got, *e) {
			t.Fatalf("Event(%d) = %+v, want %+v", i, got, *e)
		}
	}
}

// TestColumnarIndexAdoption: a trace loaded from columnar bytes must
// carry the file's side indexes, and they must equal what Warm computes
// from scratch.
func TestColumnarIndexAdoption(t *testing.T) {
	tr := buildRichSample()
	var buf bytes.Buffer
	if err := tr.WriteColumnar(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadColumnar(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.perThread == nil || got.lockOrder == nil {
		t.Fatal("columnar load did not adopt the stored side indexes")
	}
	if !reflect.DeepEqual(got.perThread, tr.PerThread()) {
		t.Fatalf("perThread = %v, want %v", got.perThread, tr.PerThread())
	}
	if !reflect.DeepEqual(got.lockOrder, tr.LockOrder()) {
		t.Fatalf("lockOrder = %v, want %v", got.lockOrder, tr.LockOrder())
	}
}

func TestColumnarRejectsMalformed(t *testing.T) {
	tr := buildRichSample()
	var buf bytes.Buffer
	if err := tr.WriteColumnar(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	badMagic := append([]byte{}, full...)
	badMagic[0] ^= 0xff
	badVersion := append([]byte{}, full...)
	badVersion[4] = 0xEE

	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   badMagic,
		"bad version": badVersion,
	}
	for _, n := range []int{6, len(full) / 4, len(full) / 2, len(full) - 3} {
		cases["truncated"] = full[:n]
		for name, data := range cases {
			if _, err := ReadColumnar(bytes.NewReader(data)); err == nil {
				t.Fatalf("%s (%d bytes) accepted", name, len(data))
			}
		}
	}
}

// TestColumnarIndexValidation corrupts each stored side index in turn;
// Trace() must fail closed rather than adopt a lying index.
func TestColumnarIndexValidation(t *testing.T) {
	tr := buildRichSample()
	var buf bytes.Buffer
	if err := tr.WriteColumnar(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := ParseColumnar(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func(c *Columnar)) error {
		cc := *c
		cc.perThread = append([][]int32{}, c.perThread...)
		for i := range cc.perThread {
			cc.perThread[i] = append([]int32{}, c.perThread[i]...)
		}
		cc.lockOrder = make(map[LockID][]int32, len(c.lockOrder))
		for l, o := range c.lockOrder {
			cc.lockOrder[l] = append([]int32{}, o...)
		}
		mutate(&cc)
		_, err := cc.Trace()
		return err
	}

	if err := corrupt(func(c *Columnar) { c.perThread[0][0] = c.perThread[1][0] }); err == nil {
		t.Fatal("wrong-thread index entry accepted")
	}
	if err := corrupt(func(c *Columnar) { c.perThread[0] = c.perThread[0][1:] }); err == nil {
		t.Fatal("incomplete per-thread index accepted")
	}
	if err := corrupt(func(c *Columnar) { c.perThread[0][0] = int32(c.n) }); err == nil {
		t.Fatal("out-of-range index entry accepted")
	}
	if err := corrupt(func(c *Columnar) {
		for l, o := range c.lockOrder {
			if len(o) > 1 {
				o[0], o[1] = o[1], o[0]
				c.lockOrder[l] = o
			}
		}
	}); err == nil {
		t.Fatal("out-of-order lock index accepted")
	}
	if err := corrupt(func(c *Columnar) {
		for l, o := range c.lockOrder {
			c.lockOrder[l] = o[:len(o)-1]
		}
	}); err == nil {
		t.Fatal("incomplete lock index accepted")
	}
	if err := corrupt(func(c *Columnar) {}); err != nil {
		t.Fatalf("uncorrupted copy rejected: %v", err)
	}
}

// TestEventCountBoundary: all decoders must reject counts past the
// int32 index range with a clear error instead of silently truncating.
func TestEventCountBoundary(t *testing.T) {
	if err := checkEventCount(MaxEvents); err != nil {
		t.Fatalf("count at the boundary rejected: %v", err)
	}
	if err := checkEventCount(MaxEvents + 1); err == nil {
		t.Fatal("count past the boundary accepted")
	} else if !strings.Contains(err.Error(), "int32") {
		t.Fatalf("err = %v", err)
	}

	// A real header whose event count is patched to 2^31: both binary
	// decoders must fail on the count itself, before trying to read
	// 2^31 events' worth of payload. An empty trace ends with a known
	// word layout, so the count's offset is fixed: the row-binary file
	// ends at the count itself, and the columnar file follows it with
	// exactly three zero-count section words (locksets, deltas, locks).
	patch := func(t *testing.T, tailOffset int, write func(*Trace, io.Writer) error, read func([]byte) error) {
		t.Helper()
		tr := New("boundary", 0)
		var buf bytes.Buffer
		if err := write(tr, &buf); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		idx := len(data) - tailOffset
		if binary.LittleEndian.Uint32(data[idx:]) != 0 {
			t.Fatalf("event-count word not at offset -%d", tailOffset)
		}
		binary.LittleEndian.PutUint32(data[idx:], 1<<31)
		err := read(data)
		if err == nil {
			t.Fatal("2^31-event header accepted")
		}
		if !strings.Contains(err.Error(), "int32") {
			t.Fatalf("err = %v", err)
		}
	}
	t.Run("binary", func(t *testing.T) {
		patch(t, 4, (*Trace).WriteBinary, func(d []byte) error {
			_, err := ReadBinary(bytes.NewReader(d))
			return err
		})
	})
	t.Run("columnar", func(t *testing.T) {
		patch(t, 16, (*Trace).WriteColumnar, func(d []byte) error {
			_, err := ParseColumnar(d)
			return err
		})
	})
}

func TestDetectFormatColumnar(t *testing.T) {
	tr := buildSample()
	var col bytes.Buffer
	if err := tr.WriteColumnar(&col); err != nil {
		t.Fatal(err)
	}
	if got := DetectFormat(col.Bytes()); got != FormatColumnar {
		t.Fatalf("DetectFormat = %q, want %q", got, FormatColumnar)
	}
	got, err := ReadAny(bytes.NewReader(col.Bytes()))
	if err != nil {
		t.Fatalf("ReadAny on columnar: %v", err)
	}
	if !bytes.Equal(canonical(t, got), canonical(t, tr)) {
		t.Fatal("ReadAny columnar load differs from original")
	}
}

// FuzzReadColumnar: arbitrary bytes must never panic the columnar
// parser, and any trace it accepts must re-encode and re-parse to the
// same thing (the corpus canonicalization contract), with DetectFormat
// agreeing about the magic.
func FuzzReadColumnar(f *testing.F) {
	for _, tr := range []*Trace{buildSample(), buildRichSample(), New("empty", 0)} {
		var buf bytes.Buffer
		if err := tr.WriteColumnar(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	}
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x43, 0x4F, 0x4C, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadColumnar(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tr == nil {
			t.Fatal("nil trace without error")
		}
		if DetectFormat(data) != FormatColumnar {
			t.Fatal("accepted columnar bytes DetectFormat does not call columnar")
		}
		var buf bytes.Buffer
		if err := tr.WriteColumnar(&buf); err != nil {
			t.Fatalf("re-encode accepted trace: %v", err)
		}
		again, err := ReadColumnar(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse re-encoded trace: %v", err)
		}
		if len(again.Events) != len(tr.Events) {
			t.Fatalf("round trip changed event count %d → %d", len(tr.Events), len(again.Events))
		}
	})
}
