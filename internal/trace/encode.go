package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"perfplay/internal/memmodel"
	"perfplay/internal/vtime"
)

// Serialization. Two formats are provided:
//
//   - a compact little-endian binary format (the recorder's native output,
//     analogous to the paper's on-disk trace whose loading cost Sec. 6.7
//     explicitly excludes from measurement), and
//   - JSON, for human inspection and tooling.
//
// Both round-trip every field the replayer consumes.

const (
	binMagic   = 0x50455246 // "PERF"
	binVersion = 3
)

// MaxEvents is the largest event count any trace may carry. Event
// indexes are int32 throughout the analysis (CritSec.AcqEv, prefix
// walks, side indexes); a longer trace would silently truncate those
// indexes, so every decoder rejects it up front instead.
const MaxEvents = 1<<31 - 1

func checkEventCount(n uint64) error {
	if n > MaxEvents {
		return fmt.Errorf("trace: %d events exceed the int32 index range (max %d)", n, MaxEvents)
	}
	return nil
}

type jsonTrace struct {
	Trace
	JSONSites []Site `json:"sites"`
}

// WriteJSON writes the trace as indented JSON.
func (tr *Trace) WriteJSON(w io.Writer) error {
	jt := jsonTrace{Trace: *tr}
	if tr.Sites != nil {
		jt.JSONSites = tr.Sites.All()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&jt)
}

// ReadJSON parses a trace previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	tr := jt.Trace
	if err := checkEventCount(uint64(len(tr.Events))); err != nil {
		return nil, err
	}
	tr.Sites = NewSiteTable()
	if len(jt.JSONSites) > 0 {
		tr.Sites.sites = jt.JSONSites
		tr.Sites.rebuildIndex()
	}
	if tr.MemNames == nil {
		tr.MemNames = make(map[memmodel.Addr]string)
	}
	if tr.SpinLocks == nil {
		tr.SpinLocks = make(map[LockID]bool)
	}
	return &tr, nil
}

type binWriter struct {
	w   *bufio.Writer
	err error
}

func (b *binWriter) u32(v uint32) {
	if b.err != nil {
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, b.err = b.w.Write(buf[:])
}

func (b *binWriter) i64(v int64) {
	if b.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	_, b.err = b.w.Write(buf[:])
}

func (b *binWriter) str(s string) {
	b.u32(uint32(len(s)))
	if b.err != nil {
		return
	}
	_, b.err = b.w.WriteString(s)
}

type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) u32() uint32 {
	if b.err != nil {
		return 0
	}
	var buf [4]byte
	_, b.err = io.ReadFull(b.r, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

func (b *binReader) i64() int64 {
	if b.err != nil {
		return 0
	}
	var buf [8]byte
	_, b.err = io.ReadFull(b.r, buf[:])
	return int64(binary.LittleEndian.Uint64(buf[:]))
}

// maxStr bounds string lengths in untrusted input; no recorder-produced
// string (file names, variable names) comes anywhere near it.
const maxStr = 1 << 20

func (b *binReader) str() string {
	n := b.u32()
	if b.err != nil || n == 0 {
		return ""
	}
	if n > maxStr {
		b.err = fmt.Errorf("trace: string length %d exceeds limit", n)
		return ""
	}
	buf := make([]byte, n)
	_, b.err = io.ReadFull(b.r, buf)
	return string(buf)
}

func writeSnapshot(b *binWriter, s memmodel.Snapshot) {
	addrs := make([]memmodel.Addr, 0, len(s))
	for a := range s {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	b.u32(uint32(len(addrs)))
	for _, a := range addrs {
		b.u32(uint32(a))
		b.i64(s[a])
	}
}

func readSnapshot(b *binReader) memmodel.Snapshot {
	n := b.u32()
	if b.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	pre := n
	if pre > 65536 {
		pre = 65536 // untrusted count: cap the preallocation
	}
	s := make(memmodel.Snapshot, pre)
	for i := uint32(0); i < n && b.err == nil; i++ {
		a := memmodel.Addr(b.u32())
		s[a] = b.i64()
	}
	return s
}

// WriteBinary writes the trace in the compact binary format.
func (tr *Trace) WriteBinary(w io.Writer) error {
	if err := checkEventCount(uint64(len(tr.Events))); err != nil {
		return err
	}
	b := &binWriter{w: bufio.NewWriter(w)}
	b.u32(binMagic)
	b.u32(binVersion)
	b.str(tr.App)
	b.u32(uint32(tr.NumThreads))
	b.i64(int64(tr.TotalTime))

	sites := tr.Sites.All()
	b.u32(uint32(len(sites)))
	for _, s := range sites {
		b.str(s.File)
		b.u32(uint32(s.Line))
		b.str(s.Func)
	}

	names := make([]memmodel.Addr, 0, len(tr.MemNames))
	for a := range tr.MemNames {
		names = append(names, a)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	b.u32(uint32(len(names)))
	for _, a := range names {
		b.u32(uint32(a))
		b.str(tr.MemNames[a])
	}

	spins := make([]LockID, 0, len(tr.SpinLocks))
	for l, v := range tr.SpinLocks {
		if v {
			spins = append(spins, l)
		}
	}
	sort.Slice(spins, func(i, j int) bool { return spins[i] < spins[j] })
	b.u32(uint32(len(spins)))
	for _, l := range spins {
		b.u32(uint32(l))
	}

	writeSnapshot(b, tr.InitMem)
	writeSnapshot(b, tr.FinalMem)

	b.u32(uint32(len(tr.Constraints)))
	for _, c := range tr.Constraints {
		b.u32(uint32(c.After))
		b.u32(uint32(c.Before))
	}

	b.u32(uint32(len(tr.Events)))
	for i := range tr.Events {
		e := &tr.Events[i]
		b.u32(uint32(e.Thread))
		flags := uint32(e.Kind)
		if e.Spin {
			flags |= 1 << 8
		}
		flags |= uint32(e.Op) << 9
		b.u32(flags)
		b.u32(uint32(e.Lock))
		b.u32(uint32(e.Addr))
		b.i64(e.Value)
		b.i64(int64(e.Cost))
		b.i64(int64(e.Time))
		b.u32(uint32(e.Site))
		b.u32(uint32(len(e.Locks)))
		for _, l := range e.Locks {
			b.u32(uint32(l))
		}
		b.u32(uint32(len(e.Sources)))
		for _, s := range e.Sources {
			b.u32(uint32(s))
		}
		if e.Kind == KSkip {
			writeSnapshot(b, e.Delta)
		}
	}
	if b.err != nil {
		return fmt.Errorf("trace: write binary: %w", b.err)
	}
	return b.w.Flush()
}

// ReadBinary parses a trace previously written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	b := &binReader{r: bufio.NewReader(r)}
	if m := b.u32(); b.err == nil && m != binMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if v := b.u32(); b.err == nil && v != binVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	tr := &Trace{
		Sites:     NewSiteTable(),
		MemNames:  make(map[memmodel.Addr]string),
		SpinLocks: make(map[LockID]bool),
	}
	tr.App = b.str()
	tr.NumThreads = int(b.u32())
	tr.TotalTime = vtime.Duration(b.i64())

	nsites := b.u32()
	presites := nsites
	if presites > 65536 {
		presites = 65536
	}
	sites := make([]Site, 0, presites)
	for i := uint32(0); i < nsites && b.err == nil; i++ {
		var s Site
		s.File = b.str()
		s.Line = int(b.u32())
		s.Func = b.str()
		sites = append(sites, s)
	}
	if len(sites) > 0 {
		tr.Sites.sites = sites
		tr.Sites.rebuildIndex()
	}

	nnames := b.u32()
	for i := uint32(0); i < nnames && b.err == nil; i++ {
		a := memmodel.Addr(b.u32())
		tr.MemNames[a] = b.str()
	}

	nspin := b.u32()
	for i := uint32(0); i < nspin && b.err == nil; i++ {
		tr.SpinLocks[LockID(b.u32())] = true
	}

	tr.InitMem = readSnapshot(b)
	tr.FinalMem = readSnapshot(b)

	ncons := b.u32()
	for i := uint32(0); i < ncons && b.err == nil; i++ {
		var c Constraint
		c.After = int32(b.u32())
		c.Before = int32(b.u32())
		tr.Constraints = append(tr.Constraints, c)
	}

	nev := b.u32()
	if b.err == nil {
		if err := checkEventCount(uint64(nev)); err != nil {
			return nil, err
		}
		// Cap the preallocation: the count is untrusted input, and a
		// hostile prefix must not force a huge allocation before the
		// truncated payload is noticed.
		pre := nev
		if pre > 65536 {
			pre = 65536
		}
		tr.Events = make([]Event, 0, pre)
	}
	for i := uint32(0); i < nev && b.err == nil; i++ {
		var e Event
		e.Thread = int32(b.u32())
		flags := b.u32()
		e.Kind = Kind(flags & 0xff)
		e.Spin = flags&(1<<8) != 0
		e.Op = WriteOp(flags >> 9)
		e.Lock = LockID(b.u32())
		e.Addr = memmodel.Addr(b.u32())
		e.Value = b.i64()
		e.Cost = vtime.Duration(b.i64())
		e.Time = vtime.Time(b.i64())
		e.Site = SiteID(b.u32())
		nl := b.u32()
		for j := uint32(0); j < nl && b.err == nil; j++ {
			e.Locks = append(e.Locks, LockID(b.u32()))
		}
		ns := b.u32()
		for j := uint32(0); j < ns && b.err == nil; j++ {
			e.Sources = append(e.Sources, int32(b.u32()))
		}
		if e.Kind == KSkip {
			e.Delta = readSnapshot(b)
		}
		tr.Events = append(tr.Events, e)
	}
	if b.err != nil {
		return nil, fmt.Errorf("trace: read binary: %w", b.err)
	}
	return tr, nil
}
