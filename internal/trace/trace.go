package trace

import (
	"fmt"

	"perfplay/internal/memmodel"
	"perfplay/internal/vtime"
)

// Constraint is an explicit happens-before edge between two events,
// identified by their global event indices. The transformation emits
// constraints to implement RULE 2 (preserve the original partial order of
// same-lock causal nodes) and the causal edges of RULE 1; the replayer
// refuses to start event Before until event After has completed.
type Constraint struct {
	After  int32 `json:"a"` // event that must complete first
	Before int32 `json:"b"` // event that must wait
}

// Trace is a recorded (or transformed) execution.
type Trace struct {
	// App names the workload that produced the trace.
	App string `json:"app"`
	// NumThreads is the thread count of the recorded run.
	NumThreads int `json:"threads"`
	// Events holds all events in recorded global time order. Transformed
	// traces preserve per-thread subsequences of the original.
	Events []Event `json:"events"`
	// Sites resolves SiteIDs.
	Sites *SiteTable `json:"-"`
	// MemNames maps addresses to workload variable names for reports.
	MemNames map[memmodel.Addr]string `json:"memnames,omitempty"`
	// InitMem is the initial memory image (non-zero cells only).
	InitMem memmodel.Snapshot `json:"initmem,omitempty"`
	// FinalMem is the memory image at the end of the recording run.
	FinalMem memmodel.Snapshot `json:"finalmem,omitempty"`
	// TotalTime is the recorded wall (virtual) time of the run.
	TotalTime vtime.Duration `json:"total"`
	// Constraints are explicit happens-before edges (transformed traces).
	Constraints []Constraint `json:"constraints,omitempty"`
	// SpinLocks marks locks whose waiters burn CPU (spin) rather than
	// block; the recorder fills it from the simulator's lock metadata so
	// CPU-waste accounting survives into replay.
	SpinLocks map[LockID]bool `json:"spinlocks,omitempty"`

	perThread [][]int32 // lazily built thread → event indices
	lockOrder map[LockID][]int32
}

// New returns an empty trace for an app with the given thread count.
func New(app string, threads int) *Trace {
	return &Trace{
		App:        app,
		NumThreads: threads,
		Sites:      NewSiteTable(),
		MemNames:   make(map[memmodel.Addr]string),
		SpinLocks:  make(map[LockID]bool),
	}
}

// Append adds an event and returns its global index.
func (tr *Trace) Append(e Event) int32 {
	tr.Events = append(tr.Events, e)
	tr.perThread = nil
	tr.lockOrder = nil
	return int32(len(tr.Events) - 1)
}

// Warm populates the lazily-built indices (PerThread, LockOrder) so the
// trace can afterwards be shared by concurrent readers. The lazy
// getters themselves are not safe to race on a cold trace; any caller
// that fans replay or analysis of one trace out across goroutines must
// warm it first.
func (tr *Trace) Warm() *Trace {
	tr.PerThread()
	tr.LockOrder()
	return tr
}

// PerThread returns, for each thread, the ascending global indices of its
// events. The result is cached; callers must not mutate it.
func (tr *Trace) PerThread() [][]int32 {
	if tr.perThread != nil {
		return tr.perThread
	}
	pt := make([][]int32, tr.NumThreads)
	for i := range tr.Events {
		t := tr.Events[i].Thread
		pt[t] = append(pt[t], int32(i))
	}
	tr.perThread = pt
	return pt
}

// LockOrder returns, for each original lock, the global indices of its
// KLockAcq events in recorded acquisition order. This is the total order
// ELSC re-imposes during replay (Sec. 5.2).
func (tr *Trace) LockOrder() map[LockID][]int32 {
	if tr.lockOrder != nil {
		return tr.lockOrder
	}
	lo := make(map[LockID][]int32)
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Kind == KLockAcq {
			lo[e.Lock] = append(lo[e.Lock], int32(i))
		}
	}
	tr.lockOrder = lo
	return lo
}

// SharedOrder returns global indices of all shared-memory accesses in
// recorded order; MEM-S replay enforces this total order.
func (tr *Trace) SharedOrder() []int32 {
	var out []int32
	for i := range tr.Events {
		if tr.Events[i].IsShared() {
			out = append(out, int32(i))
		}
	}
	return out
}

// CountKind tallies events of kind k.
func (tr *Trace) CountKind(k Kind) int {
	n := 0
	for i := range tr.Events {
		if tr.Events[i].Kind == k {
			n++
		}
	}
	return n
}

// DynamicLocks reports the number of dynamic lock acquisitions — the
// "#Locks" column of Table 1.
func (tr *Trace) DynamicLocks() int { return tr.CountKind(KLockAcq) }

// Validate checks structural invariants: thread IDs in range, lock
// acquire/release nesting well-formed per thread, constraint indices in
// range. A trace that fails validation indicates a recorder or
// transformation bug.
func (tr *Trace) Validate() error {
	held := make([]map[LockID]int, tr.NumThreads)
	for i := range held {
		held[i] = make(map[LockID]int)
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Thread < 0 || int(e.Thread) >= tr.NumThreads {
			return fmt.Errorf("event %d: thread %d out of range [0,%d)", i, e.Thread, tr.NumThreads)
		}
		switch e.Kind {
		case KLockAcq:
			if held[e.Thread][e.Lock] > 0 {
				return fmt.Errorf("event %d: T%d re-acquires held %v", i, e.Thread, e.Lock)
			}
			held[e.Thread][e.Lock]++
		case KLockRel:
			if held[e.Thread][e.Lock] == 0 {
				return fmt.Errorf("event %d: T%d releases unheld %v", i, e.Thread, e.Lock)
			}
			held[e.Thread][e.Lock]--
		case KLocksetAcq:
			if len(e.Sources) != 0 && len(e.Sources) != len(e.Locks) {
				return fmt.Errorf("event %d: lockset sources/locks length mismatch", i)
			}
		}
	}
	for t, h := range held {
		for l, n := range h {
			if n != 0 {
				return fmt.Errorf("thread %d ends holding %v", t, l)
			}
		}
	}
	for _, c := range tr.Constraints {
		if int(c.After) >= len(tr.Events) || int(c.Before) >= len(tr.Events) || c.After < 0 || c.Before < 0 {
			return fmt.Errorf("constraint %v out of range", c)
		}
	}
	return nil
}

// CritSec is a dynamic critical section: one acquire/release span of one
// lock on one thread, with its shadow read/write sets (Sec. 3.1).
type CritSec struct {
	// ID is the index of this CS in the extraction order.
	ID int
	// Thread executed the CS.
	Thread int32
	// Lock is the original lock protecting the CS.
	Lock LockID
	// AcqEv and RelEv are the global event indices of the boundaries.
	AcqEv, RelEv int32
	// Start and End are the recorded boundary timestamps.
	Start, End vtime.Time
	// SeqInLock is the CS's position in the lock's acquisition order.
	SeqInLock int
	// Reads and Writes are the shadow sets C.Srd and C.Swr.
	Reads, Writes map[memmodel.Addr]struct{}
	// WriteOps records the operation kinds applied per written address
	// (used by the benign pre-filter).
	WriteOps map[memmodel.Addr][]WriteOp
	// Region is the merged code region spanned by the CS's events.
	Region Region
}

// Empty reports whether the CS performed no shared access — the paper's
// null-lock candidate condition (Algorithm 1, line 1).
func (cs *CritSec) Empty() bool { return len(cs.Reads) == 0 && len(cs.Writes) == 0 }

// ReadOnly reports whether the CS performed reads but no writes.
func (cs *CritSec) ReadOnly() bool { return len(cs.Writes) == 0 && len(cs.Reads) > 0 }

// String renders a compact identifier.
func (cs *CritSec) String() string {
	return fmt.Sprintf("CS#%d(T%d,%v,%s)", cs.ID, cs.Thread, cs.Lock, cs.Region)
}

// ExtractCS walks the trace and returns every critical section of every
// original lock, in acquisition order of each lock and global order
// overall. Shared accesses performed while multiple locks are held are
// attributed to every open critical section (the nesting case Algorithm 2
// later fuses).
func (tr *Trace) ExtractCS() []*CritSec {
	var out []*CritSec
	open := make([]map[LockID]*CritSec, tr.NumThreads)
	for i := range open {
		open[i] = make(map[LockID]*CritSec)
	}
	seq := make(map[LockID]int)
	sites := tr.Sites
	for i := range tr.Events {
		e := &tr.Events[i]
		switch e.Kind {
		case KLockAcq:
			cs := &CritSec{
				ID:        len(out),
				Thread:    e.Thread,
				Lock:      e.Lock,
				AcqEv:     int32(i),
				RelEv:     -1,
				Start:     e.Time,
				SeqInLock: seq[e.Lock],
				Reads:     make(map[memmodel.Addr]struct{}),
				Writes:    make(map[memmodel.Addr]struct{}),
				WriteOps:  make(map[memmodel.Addr][]WriteOp),
			}
			if sites != nil {
				cs.Region = cs.Region.Extend(sites.At(e.Site))
			}
			seq[e.Lock]++
			open[e.Thread][e.Lock] = cs
			out = append(out, cs)
		case KLockRel:
			if cs := open[e.Thread][e.Lock]; cs != nil {
				cs.RelEv = int32(i)
				cs.End = e.Time
				if sites != nil {
					cs.Region = cs.Region.Extend(sites.At(e.Site))
				}
				delete(open[e.Thread], e.Lock)
			}
		case KRead:
			for _, cs := range open[e.Thread] {
				cs.Reads[e.Addr] = struct{}{}
				if sites != nil {
					cs.Region = cs.Region.Extend(sites.At(e.Site))
				}
			}
		case KWrite:
			for _, cs := range open[e.Thread] {
				cs.Writes[e.Addr] = struct{}{}
				cs.WriteOps[e.Addr] = append(cs.WriteOps[e.Addr], e.Op)
				if sites != nil {
					cs.Region = cs.Region.Extend(sites.At(e.Site))
				}
			}
		}
	}
	return out
}

// CSByLock groups critical sections by lock, preserving acquisition order.
func CSByLock(css []*CritSec) map[LockID][]*CritSec {
	m := make(map[LockID][]*CritSec)
	for _, cs := range css {
		m[cs.Lock] = append(m[cs.Lock], cs)
	}
	return m
}
