package trace_test

import (
	"bytes"
	"io"
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/workload"
)

// TestFormatsAgreeOnWorkloads records every example workload and checks
// that the three on-disk encodings are interchangeable: a trace written
// columnar, row-binary, or JSON must read back field-identical (using
// the row-binary encoding of the loaded trace as the canonical form),
// and DetectFormat must name each encoding correctly.
func TestFormatsAgreeOnWorkloads(t *testing.T) {
	for _, app := range workload.All() {
		t.Run(app.Name, func(t *testing.T) {
			p := app.Build(workload.Config{Threads: 2, Scale: 0.1, Seed: 1})
			rec := sim.Run(p, sim.Config{Seed: 1})
			tr := rec.Trace

			var want bytes.Buffer
			if err := tr.WriteBinary(&want); err != nil {
				t.Fatal(err)
			}

			encoders := map[string]struct {
				write  func(*trace.Trace, io.Writer) error
				format string
			}{
				"binary":   {(*trace.Trace).WriteBinary, trace.FormatBinary},
				"columnar": {(*trace.Trace).WriteColumnar, trace.FormatColumnar},
				"json":     {(*trace.Trace).WriteJSON, trace.FormatJSON},
			}
			for name, enc := range encoders {
				var buf bytes.Buffer
				if err := enc.write(tr, &buf); err != nil {
					t.Fatalf("%s: write: %v", name, err)
				}
				if got := trace.DetectFormat(buf.Bytes()); got != enc.format {
					t.Fatalf("%s: DetectFormat = %q, want %q", name, got, enc.format)
				}
				loaded, err := trace.ReadAny(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("%s: ReadAny: %v", name, err)
				}
				var got bytes.Buffer
				if err := loaded.WriteBinary(&got); err != nil {
					t.Fatalf("%s: canonicalize: %v", name, err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("%s: loaded trace differs from the recorded one", name)
				}
			}
		})
	}
}
