// Package trace defines the execution-trace model at the heart of
// PerfPlay: events, code sites, critical sections, and trace containers,
// plus binary/JSON serialization and checkpoint support.
//
// A trace is what the paper's Pin-based recorder emits: the per-thread
// sequence of lock operations, shared-memory accesses and compute
// segments, each tagged with a code site so ULCPs can later be fused per
// code region (Sec. 4.1).
package trace

import (
	"fmt"
	"sort"
	"sync"
)

// SiteID indexes a code site in a trace's SiteTable. Zero is "unknown".
type SiteID int32

// NoSite marks events with no source attribution.
const NoSite SiteID = 0

// Site is a source-code location in the (simulated) application, in the
// same spirit as the file:line pairs Pin resolves from debug info.
type Site struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Func string `json:"func"`
}

// String renders the conventional file:line(func) form.
func (s Site) String() string {
	if s.Func == "" {
		return fmt.Sprintf("%s:%d", s.File, s.Line)
	}
	return fmt.Sprintf("%s:%d(%s)", s.File, s.Line, s.Func)
}

// SiteTable interns Sites and hands out stable SiteIDs. It is safe for
// concurrent use: simulated application threads run as real goroutines
// and may intern sites while recording (e.g. workloads that resolve
// sites inside their thread bodies), and replay/analysis stages resolve
// IDs from several pool workers at once.
type SiteTable struct {
	mu    sync.RWMutex
	sites []Site
	index map[Site]SiteID
}

// NewSiteTable returns an empty table; ID 0 is reserved for "unknown".
func NewSiteTable() *SiteTable {
	t := &SiteTable{index: make(map[Site]SiteID)}
	t.sites = append(t.sites, Site{File: "<unknown>"})
	return t
}

// Intern returns the ID for s, allocating one if needed.
func (t *SiteTable) Intern(s Site) SiteID {
	t.mu.RLock()
	id, ok := t.index[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.index[s]; ok { // lost the race to another interner
		return id
	}
	id = SiteID(len(t.sites))
	t.sites = append(t.sites, s)
	t.index[s] = id
	return id
}

// At returns the site for an ID; out-of-range IDs yield the unknown site.
func (t *SiteTable) At(id SiteID) Site {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || int(id) >= len(t.sites) {
		return t.sites[0]
	}
	return t.sites[id]
}

// Len reports the number of interned sites (including the unknown site).
func (t *SiteTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.sites)
}

// All returns the table contents at the time of the call; callers must
// not mutate the slice. Entries are append-only, so the returned prefix
// stays valid even if other goroutines keep interning.
func (t *SiteTable) All() []Site {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sites
}

// rebuildIndex restores the intern map after deserialization.
func (t *SiteTable) rebuildIndex() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.index = make(map[Site]SiteID, len(t.sites))
	for i, s := range t.sites {
		t.index[s] = SiteID(i)
	}
}

// Region is a contiguous code region: a file plus an inclusive line span.
// Regions are the unit of ULCP fusion (Algorithm 2): the paper's ⊓
// (overlap test) and ⊔ (merge) become interval intersection and union,
// which also subsumes the nested-lock case.
type Region struct {
	File      string `json:"file"`
	StartLine int    `json:"start"`
	EndLine   int    `json:"end"`
}

// EmptyRegion reports whether the region covers no code.
func (r Region) Empty() bool { return r.File == "" }

// Contains reports whether the region covers the site.
func (r Region) Contains(s Site) bool {
	return r.File == s.File && s.Line >= r.StartLine && s.Line <= r.EndLine
}

// Overlaps implements Algorithm 2's ⊓: whether two regions share code.
func (r Region) Overlaps(o Region) bool {
	if r.Empty() || o.Empty() || r.File != o.File {
		return false
	}
	return r.StartLine <= o.EndLine && o.StartLine <= r.EndLine
}

// Merge implements Algorithm 2's ⊔: the conflated region spanning both.
// Merging regions from different files keeps the receiver (callers only
// merge overlapping regions, which are same-file by construction).
func (r Region) Merge(o Region) Region {
	if r.Empty() {
		return o
	}
	if o.Empty() || r.File != o.File {
		return r
	}
	out := r
	if o.StartLine < out.StartLine {
		out.StartLine = o.StartLine
	}
	if o.EndLine > out.EndLine {
		out.EndLine = o.EndLine
	}
	return out
}

// Extend grows the region to cover the site.
func (r Region) Extend(s Site) Region {
	if s.File == "" {
		return r
	}
	if r.Empty() {
		return Region{File: s.File, StartLine: s.Line, EndLine: s.Line}
	}
	if r.File != s.File {
		return r
	}
	if s.Line < r.StartLine {
		r.StartLine = s.Line
	}
	if s.Line > r.EndLine {
		r.EndLine = s.Line
	}
	return r
}

// String renders file:start-end.
func (r Region) String() string {
	if r.Empty() {
		return "<none>"
	}
	if r.StartLine == r.EndLine {
		return fmt.Sprintf("%s:%d", r.File, r.StartLine)
	}
	return fmt.Sprintf("%s:%d-%d", r.File, r.StartLine, r.EndLine)
}

// Less orders regions for stable report output.
func (r Region) Less(o Region) bool {
	if r.File != o.File {
		return r.File < o.File
	}
	if r.StartLine != o.StartLine {
		return r.StartLine < o.StartLine
	}
	return r.EndLine < o.EndLine
}

// SortRegions sorts a slice of regions in place for deterministic output.
func SortRegions(rs []Region) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Less(rs[j]) })
}
