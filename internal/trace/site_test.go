package trace

import (
	"fmt"
	"sync"
	"testing"
)

// TestSiteTableConcurrentIntern hammers one table from many goroutines
// (run under -race in CI): every goroutine interning the same site must
// observe the same ID, and the table must stay internally consistent.
func TestSiteTableConcurrentIntern(t *testing.T) {
	tbl := NewSiteTable()
	const goroutines = 8
	const sitesPerG = 50

	ids := make([][]SiteID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[g] = make([]SiteID, sitesPerG)
			for i := 0; i < sitesPerG; i++ {
				// Same site set from every goroutine, maximum contention.
				s := Site{File: "f.c", Line: i, Func: fmt.Sprintf("fn%d", i)}
				ids[g][i] = tbl.Intern(s)
				// Interleave reads with the writes.
				if got := tbl.At(ids[g][i]); got != s {
					panic(fmt.Sprintf("At(%d) = %v, want %v", ids[g][i], got, s))
				}
			}
		}()
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		for i := range ids[g] {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got id %d for site %d, goroutine 0 got %d",
					g, ids[g][i], i, ids[0][i])
			}
		}
	}
	if tbl.Len() != sitesPerG+1 { // + the reserved unknown site
		t.Fatalf("table holds %d sites, want %d", tbl.Len(), sitesPerG+1)
	}
	if got := len(tbl.All()); got != tbl.Len() {
		t.Fatalf("All() returned %d sites, Len() says %d", got, tbl.Len())
	}
}
