package trace

import (
	"fmt"

	"perfplay/internal/memmodel"
	"perfplay/internal/vtime"
)

// LockID identifies a lock object. Original application locks use small
// non-negative IDs; the transformation allocates auxiliary locks ("@L" in
// the paper, Fig. 8) from a separate high range so reports can tell them
// apart.
type LockID int32

// NoLock is the zero LockID; lock 0 is never allocated by workloads.
const NoLock LockID = 0

// AuxLockBase is the first LockID used for auxiliary locks introduced by
// RULE 3. Everything below it is an original application lock.
const AuxLockBase LockID = 1 << 20

// IsAux reports whether the lock is an auxiliary RULE-3 lock.
func (l LockID) IsAux() bool { return l >= AuxLockBase }

// String renders original locks as "L<n>" and auxiliary locks as "@L<n>",
// matching the paper's notation.
func (l LockID) String() string {
	if l.IsAux() {
		return fmt.Sprintf("@L%d", int32(l-AuxLockBase))
	}
	return fmt.Sprintf("L%d", int32(l))
}

// Kind discriminates trace events.
type Kind uint8

// Event kinds. The set is intentionally small: the paper records "all
// instructions and memory accesses between lock and unlock operations";
// everything else is summarized as compute segments (selective recording).
const (
	KInvalid Kind = iota
	// KThreadStart and KThreadEnd bracket a thread's timeline.
	KThreadStart
	KThreadEnd
	// KCompute is a program segment with a virtual cost and no shared
	// accesses (the SG segments of Theorem 1's model).
	KCompute
	// KLockAcq and KLockRel are acquisition/release of an original lock.
	KLockAcq
	KLockRel
	// KLocksetAcq and KLocksetRel acquire/release an auxiliary lockset;
	// they appear only in transformed traces (RULE 3/4).
	KLocksetAcq
	KLocksetRel
	// KRead and KWrite are shared-memory accesses.
	KRead
	KWrite
	// KSleep advances time without consuming CPU (timed waits).
	KSleep
	// KSkip marks a selectively-recorded range: the replayer restores the
	// recorded memory delta instead of re-executing.
	KSkip
	// KBarrier is one thread's participation in a barrier episode: Lock
	// holds the barrier ID and Value the episode (generation) number. The
	// replayer releases an episode when all of its recorded participants
	// have arrived, so barrier waits are re-derived rather than baked in.
	KBarrier
)

var kindNames = [...]string{
	KInvalid:     "invalid",
	KThreadStart: "thread-start",
	KThreadEnd:   "thread-end",
	KCompute:     "compute",
	KLockAcq:     "lock",
	KLockRel:     "unlock",
	KLocksetAcq:  "lockset-acq",
	KLocksetRel:  "lockset-rel",
	KRead:        "read",
	KWrite:       "write",
	KSleep:       "sleep",
	KSkip:        "skip",
	KBarrier:     "barrier",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// WriteOp describes how a KWrite mutates its cell. Carrying the operation
// (not just the stored value) lets the replayer re-execute writes, which
// is what makes the reversed replay of Sec. 3.1 meaningful: commutative or
// redundant writes yield identical final state under either order (benign
// ULCP), order-sensitive ones do not (true contention).
type WriteOp uint8

const (
	// WSet stores Value.
	WSet WriteOp = iota
	// WAdd adds Value to the cell (commutative).
	WAdd
	// WAnd ands the cell with Value (disjoint bit manipulation).
	WAnd
	// WOr ors the cell with Value (disjoint bit manipulation).
	WOr
)

// Apply executes the write against a current cell value.
func (op WriteOp) Apply(cur, v int64) int64 {
	switch op {
	case WAdd:
		return cur + v
	case WAnd:
		return cur & v
	case WOr:
		return cur | v
	default:
		return v
	}
}

// Commutative reports whether two applications of ops of this kind commute
// with each other (used as a fast pre-filter before reversed replay).
func (op WriteOp) Commutative() bool { return op != WSet }

// String names the op.
func (op WriteOp) String() string {
	switch op {
	case WAdd:
		return "add"
	case WAnd:
		return "and"
	case WOr:
		return "or"
	default:
		return "set"
	}
}

// Event is one recorded step of one thread.
//
// The meaning of the fields depends on Kind:
//
//	KCompute:     Cost
//	KLockAcq/Rel: Lock, Site, Cost (lock-op overhead), Spin (acq only)
//	KLocksetAcq:  Locks, Sources (parallel slices), Site, Cost
//	KRead:        Addr, Value (observed), Site, Cost
//	KWrite:       Addr, Value, Op, Site, Cost
//	KSleep:       Cost (the timeout)
//	KSkip:        Delta (restored state), Cost (elapsed virtual time)
//
// Time is the completion timestamp from the recording run; replays compute
// their own times but use recorded times for ELSC ordering and RULE 2.
type Event struct {
	Thread int32          `json:"t"`
	Kind   Kind           `json:"k"`
	Lock   LockID         `json:"l,omitempty"`
	Locks  []LockID       `json:"ls,omitempty"`
	Addr   memmodel.Addr  `json:"a,omitempty"`
	Value  int64          `json:"v,omitempty"`
	Op     WriteOp        `json:"op,omitempty"`
	Cost   vtime.Duration `json:"c,omitempty"`
	Time   vtime.Time     `json:"tm"`
	Site   SiteID         `json:"s,omitempty"`
	Spin   bool           `json:"sp,omitempty"`
	// Sources parallels Locks on KLocksetAcq events: Sources[i] is the
	// global event index of the release event of the source critical
	// section that contributed Locks[i], or -1 for the node's own lock.
	// The dynamic locking strategy (Fig. 9) consults it at replay time.
	Sources []int32 `json:"src,omitempty"`
	// Delta holds the restored memory state for KSkip events.
	Delta memmodel.Snapshot `json:"d,omitempty"`
}

// IsShared reports whether the event touches shared memory.
func (e *Event) IsShared() bool { return e.Kind == KRead || e.Kind == KWrite }

// IsSync reports whether the event is a synchronization operation.
func (e *Event) IsSync() bool {
	switch e.Kind {
	case KLockAcq, KLockRel, KLocksetAcq, KLocksetRel:
		return true
	}
	return false
}

// String renders a compact human-readable form for debugging output.
func (e *Event) String() string {
	switch e.Kind {
	case KCompute:
		return fmt.Sprintf("T%d compute %v", e.Thread, e.Cost)
	case KLockAcq:
		return fmt.Sprintf("T%d lock %v", e.Thread, e.Lock)
	case KLockRel:
		return fmt.Sprintf("T%d unlock %v", e.Thread, e.Lock)
	case KLocksetAcq:
		return fmt.Sprintf("T%d lockset-acq %v", e.Thread, e.Locks)
	case KLocksetRel:
		return fmt.Sprintf("T%d lockset-rel %v", e.Thread, e.Locks)
	case KRead:
		return fmt.Sprintf("T%d read a%d=%d", e.Thread, e.Addr, e.Value)
	case KWrite:
		return fmt.Sprintf("T%d write a%d %s %d", e.Thread, e.Addr, e.Op, e.Value)
	case KSleep:
		return fmt.Sprintf("T%d sleep %v", e.Thread, e.Cost)
	case KSkip:
		return fmt.Sprintf("T%d skip %v", e.Thread, e.Cost)
	default:
		return fmt.Sprintf("T%d %v", e.Thread, e.Kind)
	}
}
