package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadAnySniffsBothEncodings(t *testing.T) {
	tr := buildSample()

	var bin, js bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for name, payload := range map[string][]byte{"binary": bin.Bytes(), "json": js.Bytes()} {
		got, err := ReadAny(bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("%s: ReadAny: %v", name, err)
		}
		if got.App != tr.App || len(got.Events) != len(tr.Events) {
			t.Fatalf("%s: round trip mismatch: %s/%d events", name, got.App, len(got.Events))
		}
	}

	if _, err := ReadAny(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	} else if !strings.Contains(err.Error(), "neither") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadFile(t *testing.T) {
	tr := buildSample()
	path := filepath.Join(t.TempDir(), "t.trace")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != tr.App {
		t.Fatalf("got app %q", got.App)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}
