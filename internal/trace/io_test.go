package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadAnySniffsBothEncodings(t *testing.T) {
	tr := buildSample()

	var bin, js bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for name, payload := range map[string][]byte{"binary": bin.Bytes(), "json": js.Bytes()} {
		got, err := ReadAny(bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("%s: ReadAny: %v", name, err)
		}
		if got.App != tr.App || len(got.Events) != len(tr.Events) {
			t.Fatalf("%s: round trip mismatch: %s/%d events", name, got.App, len(got.Events))
		}
	}

	if _, err := ReadAny(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	} else if !strings.Contains(err.Error(), "neither") {
		t.Fatalf("err = %v", err)
	}
}

// TestReadAnyRejectsMalformed table-drives the content-sniffing loader
// over hostile inputs: every case must come back as an error from both
// decoders — never a panic, never a silently empty trace.
func TestReadAnyRejectsMalformed(t *testing.T) {
	tr := buildSample()
	var bin bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}

	// An otherwise-valid binary header that declares an absurd App
	// string length: the length guard must fire before any attempt to
	// allocate or read that much.
	oversized := make([]byte, 0, 12)
	oversized = append(oversized, bin.Bytes()[:8]...) // magic + version
	oversized = binary.LittleEndian.AppendUint32(oversized, 1<<24)

	cases := map[string]struct {
		data    []byte
		wantErr string // substring of the returned error
	}{
		"empty file":             {data: nil, wantErr: "neither"},
		"truncated header":       {data: bin.Bytes()[:6], wantErr: "neither"},
		"truncated mid-events":   {data: bin.Bytes()[:bin.Len()/2], wantErr: "neither"},
		"truncated last byte":    {data: bin.Bytes()[:bin.Len()-1], wantErr: "neither"},
		"bad magic":              {data: []byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}, wantErr: "bad magic"},
		"oversized string field": {data: oversized, wantErr: "exceeds limit"},
		"invalid json":           {data: []byte(`{"app": "x", "events": [`), wantErr: "json"},
		"json wrong shape":       {data: []byte(`{"events": "not-an-array"}`), wantErr: "json"},
		"garbage text":           {data: []byte("definitely not a trace"), wantErr: "neither"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			got, err := ReadAny(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("accepted %d malformed bytes: %d events", len(tc.data), len(got.Events))
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestDetectFormat(t *testing.T) {
	tr := buildSample()
	var bin, js bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for data, want := range map[*bytes.Buffer]string{&bin: FormatBinary, &js: FormatJSON} {
		if got := DetectFormat(data.Bytes()); got != want {
			t.Fatalf("DetectFormat = %q, want %q", got, want)
		}
	}
	if got := DetectFormat(nil); got != FormatJSON {
		t.Fatalf("DetectFormat(nil) = %q", got)
	}
}

func TestReadFile(t *testing.T) {
	tr := buildSample()
	path := filepath.Join(t.TempDir(), "t.trace")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != tr.App {
		t.Fatalf("got app %q", got.App)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}
