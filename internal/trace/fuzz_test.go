package trace

import (
	"bytes"
	"testing"
)

// FuzzReadAny: the shared loader behind trace uploads, corpus blobs and
// the CLI's -replay path must never panic on arbitrary bytes, and any
// trace it accepts must survive the binary re-encode + re-parse round
// trip the corpus performs when it canonicalizes blobs.
func FuzzReadAny(f *testing.F) {
	tr := buildSample()
	var bin, js bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		f.Fatal(err)
	}
	if err := tr.WriteJSON(&js); err != nil {
		f.Fatal(err)
	}
	var col bytes.Buffer
	if err := tr.WriteColumnar(&col); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add(col.Bytes())
	f.Add(js.Bytes())
	f.Add(bin.Bytes()[:len(bin.Bytes())/2]) // truncated binary
	f.Add(col.Bytes()[:len(col.Bytes())/2]) // truncated columnar
	f.Add([]byte{})
	f.Add([]byte(`{"events": []}`))
	f.Add([]byte(`{"app": "x", "threads": -1, "events": [{}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadAny(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got == nil {
			t.Fatal("nil trace without error")
		}
		var buf bytes.Buffer
		if err := got.WriteBinary(&buf); err != nil {
			t.Fatalf("re-encode accepted trace: %v", err)
		}
		if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-parse re-encoded trace: %v", err)
		}
	})
}

// FuzzDetectFormat: the format sniffer must be total and deterministic,
// and must agree with the magic-guarded decoders — anything it calls
// JSON has to be refused by both ReadBinary and ParseColumnar, and
// anything it calls columnar refused by ReadBinary (and vice versa), or
// the sniffer and the loaders would disagree about how to parse the
// same corpus blob.
func FuzzDetectFormat(f *testing.F) {
	tr := buildSample()
	var bin, col, js bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		f.Fatal(err)
	}
	if err := tr.WriteColumnar(&col); err != nil {
		f.Fatal(err)
	}
	if err := tr.WriteJSON(&js); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add(col.Bytes())
	f.Add(js.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x46, 0x52, 0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		got := DetectFormat(data)
		if got != FormatBinary && got != FormatJSON && got != FormatColumnar {
			t.Fatalf("unknown format %q", got)
		}
		if again := DetectFormat(data); again != got {
			t.Fatalf("non-deterministic: %q then %q", got, again)
		}
		if got != FormatBinary {
			if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
				t.Fatalf("binary decoder accepted bytes DetectFormat called %s", got)
			}
		}
		if got != FormatColumnar {
			if _, err := ParseColumnar(data); err == nil {
				t.Fatalf("columnar parser accepted bytes DetectFormat called %s", got)
			}
		}
	})
}
