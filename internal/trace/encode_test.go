package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("bad magic accepted")
	} else if !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadBinaryBadVersion(t *testing.T) {
	var buf bytes.Buffer
	tr := New("v", 1)
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 0xEE // clobber the version word
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	tr := buildSample()
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{9, len(full) / 2, len(full) - 3} {
		if _, err := ReadBinary(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", n)
		}
	}
}

func TestReadJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	tr := New("empty", 0)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "empty" || len(got.Events) != 0 {
		t.Fatalf("got %+v", got)
	}
}

// FuzzReadBinary: arbitrary input must never panic the decoder.
func FuzzReadBinary(f *testing.F) {
	var seedBuf bytes.Buffer
	tr := buildSample()
	if err := tr.WriteBinary(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x46, 0x52, 0x45, 0x50, 3, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err == nil && tr == nil {
			t.Fatal("nil trace without error")
		}
	})
}
