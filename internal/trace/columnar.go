package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"perfplay/internal/memmodel"
	"perfplay/internal/vtime"
)

// Columnar trace format ("PCOL"). The third on-disk encoding, designed
// for the replay hot path rather than for compactness: every per-event
// field lives in its own fixed-stride column, so a reader can address
// field i of event j by arithmetic alone — no per-event decode, no
// per-event allocation, and a file mapped (or read) into memory is
// directly usable as the backing store of the column views. Rare
// variable-length payloads (lockset membership, skip deltas) live in
// sidecar tables keyed by event index, keeping the columns truly
// fixed-stride. The file also carries the two side indexes every
// analysis warms up front — per-thread event lists and per-lock
// acquisition order — so a columnar load skips the O(events) index
// build that Trace.Warm performs for the other formats.
//
// Layout (all integers little-endian):
//
//	u32 magic "PCOL"      u32 version
//	metadata: app, threads, total time, sites, memnames, spinlocks,
//	          initial/final snapshots, constraints (same primitives as
//	          the row-binary format)
//	u32 nev
//	columns, each contiguous: thread, flags(kind|spin|op), lock, addr,
//	          site (4-byte stride); value, cost, time (8-byte stride)
//	sidecars: locksets (event idx → locks+sources), deltas (event idx →
//	          snapshot)
//	indexes:  per-thread event lists, per-lock acquisition order
const (
	colMagic   = 0x4C4F4350 // "PCOL"
	colVersion = 1
)

// colEventStride is the total fixed bytes one event occupies across all
// columns: five u32 columns and three i64 columns.
const colEventStride = 5*4 + 3*8

// maxThreads bounds the thread count in untrusted columnar input before
// the per-thread index is allocated.
const maxThreads = 1 << 20

// Columnar is a zero-copy view over columnar trace bytes. Accessors
// decode single fields straight out of the raw buffer; nothing is
// materialized until Trace is called. A Columnar and any Trace built
// from it share the underlying buffer only for reads — neither mutates
// it — so both are safe for concurrent readers.
type Columnar struct {
	app        string
	numThreads int
	totalTime  vtime.Duration

	sites       []Site
	memNames    map[memmodel.Addr]string
	spinLocks   map[LockID]bool
	initMem     memmodel.Snapshot
	finalMem    memmodel.Snapshot
	constraints []Constraint

	n int
	// Raw column views into the decoded buffer.
	thread, flags, lock, addr, site []byte // 4-byte stride
	value, cost, time               []byte // 8-byte stride

	locksets map[int32]locksetEntry
	deltas   map[int32]memmodel.Snapshot

	perThread [][]int32
	lockOrder map[LockID][]int32
}

type locksetEntry struct {
	locks   []LockID
	sources []int32
}

// NumEvents reports the event count.
func (c *Columnar) NumEvents() int { return c.n }

// App names the recorded workload.
func (c *Columnar) App() string { return c.app }

// NumThreads reports the recorded thread count.
func (c *Columnar) NumThreads() int { return c.numThreads }

func (c *Columnar) u32At(col []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(col[i*4:])
}

func (c *Columnar) i64At(col []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(col[i*8:]))
}

// Thread returns event i's thread without materializing the event.
func (c *Columnar) Thread(i int) int32 { return int32(c.u32At(c.thread, i)) }

// Kind returns event i's kind.
func (c *Columnar) Kind(i int) Kind { return Kind(c.u32At(c.flags, i) & 0xff) }

// Spin reports event i's spin flag.
func (c *Columnar) Spin(i int) bool { return c.u32At(c.flags, i)&(1<<8) != 0 }

// Op returns event i's write operation.
func (c *Columnar) Op(i int) WriteOp { return WriteOp(c.u32At(c.flags, i) >> 9) }

// Lock returns event i's lock.
func (c *Columnar) Lock(i int) LockID { return LockID(c.u32At(c.lock, i)) }

// Addr returns event i's address.
func (c *Columnar) Addr(i int) memmodel.Addr { return memmodel.Addr(c.u32At(c.addr, i)) }

// Site returns event i's code site.
func (c *Columnar) Site(i int) SiteID { return SiteID(c.u32At(c.site, i)) }

// Value returns event i's value.
func (c *Columnar) Value(i int) int64 { return c.i64At(c.value, i) }

// Cost returns event i's virtual cost.
func (c *Columnar) Cost(i int) vtime.Duration { return vtime.Duration(c.i64At(c.cost, i)) }

// Time returns event i's recorded completion timestamp.
func (c *Columnar) Time(i int) vtime.Time { return vtime.Time(c.i64At(c.time, i)) }

// Event materializes event i, including its sidecar payloads.
func (c *Columnar) Event(i int) Event {
	e := Event{
		Thread: c.Thread(i),
		Kind:   c.Kind(i),
		Spin:   c.Spin(i),
		Op:     c.Op(i),
		Lock:   c.Lock(i),
		Addr:   c.Addr(i),
		Value:  c.Value(i),
		Cost:   c.Cost(i),
		Time:   c.Time(i),
		Site:   c.Site(i),
	}
	if ls, ok := c.locksets[int32(i)]; ok {
		e.Locks, e.Sources = ls.locks, ls.sources
	}
	if d, ok := c.deltas[int32(i)]; ok {
		e.Delta = d
	}
	return e
}

// WriteColumnar writes the trace in the columnar format.
func (tr *Trace) WriteColumnar(w io.Writer) error {
	if len(tr.Events) > MaxEvents {
		return fmt.Errorf("trace: %d events exceed the int32 index range", len(tr.Events))
	}
	b := &binWriter{w: bufio.NewWriter(w)}
	b.u32(colMagic)
	b.u32(colVersion)
	b.str(tr.App)
	b.u32(uint32(tr.NumThreads))
	b.i64(int64(tr.TotalTime))

	var sites []Site
	if tr.Sites != nil {
		sites = tr.Sites.All()
	}
	b.u32(uint32(len(sites)))
	for _, s := range sites {
		b.str(s.File)
		b.u32(uint32(s.Line))
		b.str(s.Func)
	}

	names := make([]memmodel.Addr, 0, len(tr.MemNames))
	for a := range tr.MemNames {
		names = append(names, a)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	b.u32(uint32(len(names)))
	for _, a := range names {
		b.u32(uint32(a))
		b.str(tr.MemNames[a])
	}

	spins := make([]LockID, 0, len(tr.SpinLocks))
	for l, v := range tr.SpinLocks {
		if v {
			spins = append(spins, l)
		}
	}
	sort.Slice(spins, func(i, j int) bool { return spins[i] < spins[j] })
	b.u32(uint32(len(spins)))
	for _, l := range spins {
		b.u32(uint32(l))
	}

	writeSnapshot(b, tr.InitMem)
	writeSnapshot(b, tr.FinalMem)

	b.u32(uint32(len(tr.Constraints)))
	for _, c := range tr.Constraints {
		b.u32(uint32(c.After))
		b.u32(uint32(c.Before))
	}

	// Columns: one pass over the events per column keeps each column's
	// bytes contiguous on disk, which is what makes the reader's views
	// fixed-stride slices of one buffer.
	b.u32(uint32(len(tr.Events)))
	for i := range tr.Events {
		b.u32(uint32(tr.Events[i].Thread))
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		flags := uint32(e.Kind)
		if e.Spin {
			flags |= 1 << 8
		}
		flags |= uint32(e.Op) << 9
		b.u32(flags)
	}
	for i := range tr.Events {
		b.u32(uint32(tr.Events[i].Lock))
	}
	for i := range tr.Events {
		b.u32(uint32(tr.Events[i].Addr))
	}
	for i := range tr.Events {
		b.u32(uint32(tr.Events[i].Site))
	}
	for i := range tr.Events {
		b.i64(tr.Events[i].Value)
	}
	for i := range tr.Events {
		b.i64(int64(tr.Events[i].Cost))
	}
	for i := range tr.Events {
		b.i64(int64(tr.Events[i].Time))
	}

	// Sidecars: lockset membership and skip deltas, keyed by event index
	// in ascending order.
	var lsIdx, dIdx []int32
	for i := range tr.Events {
		e := &tr.Events[i]
		if len(e.Locks) > 0 || len(e.Sources) > 0 {
			lsIdx = append(lsIdx, int32(i))
		}
		if e.Kind == KSkip {
			dIdx = append(dIdx, int32(i))
		}
	}
	b.u32(uint32(len(lsIdx)))
	for _, i := range lsIdx {
		e := &tr.Events[i]
		b.u32(uint32(i))
		b.u32(uint32(len(e.Locks)))
		for _, l := range e.Locks {
			b.u32(uint32(l))
		}
		b.u32(uint32(len(e.Sources)))
		for _, s := range e.Sources {
			b.u32(uint32(s))
		}
	}
	b.u32(uint32(len(dIdx)))
	for _, i := range dIdx {
		b.u32(uint32(i))
		writeSnapshot(b, tr.Events[i].Delta)
	}

	// Side indexes: what Warm would compute, stored so readers don't.
	perThread := tr.PerThread()
	for _, evs := range perThread {
		b.u32(uint32(len(evs)))
		for _, idx := range evs {
			b.u32(uint32(idx))
		}
	}
	lockOrder := tr.LockOrder()
	locks := make([]LockID, 0, len(lockOrder))
	for l := range lockOrder {
		locks = append(locks, l)
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
	b.u32(uint32(len(locks)))
	for _, l := range locks {
		b.u32(uint32(l))
		b.u32(uint32(len(lockOrder[l])))
		for _, idx := range lockOrder[l] {
			b.u32(uint32(idx))
		}
	}

	if b.err != nil {
		return fmt.Errorf("trace: write columnar: %w", b.err)
	}
	return b.w.Flush()
}

// sliceReader decodes from an in-memory buffer, handing out views (not
// copies) of the underlying bytes.
type sliceReader struct {
	data []byte
	off  int
	err  error
}

// take returns a view of the next n bytes.
func (r *sliceReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data)-r.off < n {
		r.err = fmt.Errorf("trace: columnar data truncated at offset %d (need %d bytes, have %d)",
			r.off, n, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *sliceReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *sliceReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *sliceReader) str() string {
	n := r.u32()
	if r.err != nil || n == 0 {
		return ""
	}
	if n > maxStr {
		r.err = fmt.Errorf("trace: string length %d exceeds limit", n)
		return ""
	}
	b := r.take(int(n))
	return string(b)
}

func (r *sliceReader) snapshot() memmodel.Snapshot {
	n := r.u32()
	if r.err != nil || n == 0 {
		return nil
	}
	pre := n
	if pre > 65536 {
		pre = 65536 // untrusted count: cap the preallocation
	}
	s := make(memmodel.Snapshot, pre)
	for i := uint32(0); i < n && r.err == nil; i++ {
		a := memmodel.Addr(r.u32())
		s[a] = r.i64()
	}
	return s
}

// ParseColumnar builds a zero-copy Columnar view over raw columnar
// bytes. The metadata (sites, snapshots, indexes) is decoded eagerly —
// it is small — while the event columns stay as views into data, so the
// call does no per-event work beyond validating section lengths.
// Callers must not mutate data while the view (or any Trace built from
// it) is alive.
func ParseColumnar(data []byte) (*Columnar, error) {
	r := &sliceReader{data: data}
	if m := r.u32(); r.err == nil && m != colMagic {
		return nil, fmt.Errorf("trace: bad columnar magic %#x", m)
	}
	if v := r.u32(); r.err == nil && v != colVersion {
		return nil, fmt.Errorf("trace: unsupported columnar version %d", v)
	}
	c := &Columnar{
		memNames:  make(map[memmodel.Addr]string),
		spinLocks: make(map[LockID]bool),
	}
	c.app = r.str()
	nt := r.u32()
	if r.err == nil && nt > maxThreads {
		return nil, fmt.Errorf("trace: implausible thread count %d", nt)
	}
	c.numThreads = int(nt)
	c.totalTime = vtime.Duration(r.i64())

	nsites := r.u32()
	pre := nsites
	if pre > 65536 {
		pre = 65536
	}
	c.sites = make([]Site, 0, pre)
	for i := uint32(0); i < nsites && r.err == nil; i++ {
		var s Site
		s.File = r.str()
		s.Line = int(r.u32())
		s.Func = r.str()
		c.sites = append(c.sites, s)
	}

	nnames := r.u32()
	for i := uint32(0); i < nnames && r.err == nil; i++ {
		a := memmodel.Addr(r.u32())
		c.memNames[a] = r.str()
	}

	nspin := r.u32()
	for i := uint32(0); i < nspin && r.err == nil; i++ {
		c.spinLocks[LockID(r.u32())] = true
	}

	c.initMem = r.snapshot()
	c.finalMem = r.snapshot()

	ncons := r.u32()
	for i := uint32(0); i < ncons && r.err == nil; i++ {
		var con Constraint
		con.After = int32(r.u32())
		con.Before = int32(r.u32())
		c.constraints = append(c.constraints, con)
	}

	nev := r.u32()
	if r.err == nil {
		if err := checkEventCount(uint64(nev)); err != nil {
			return nil, err
		}
		// The columns need nev*stride bytes; checking the total up front
		// turns a hostile count into one clear error instead of eight.
		if int64(len(data)-r.off) < int64(nev)*colEventStride {
			return nil, fmt.Errorf("trace: columnar columns truncated (%d events need %d bytes, have %d)",
				nev, int64(nev)*colEventStride, len(data)-r.off)
		}
	}
	c.n = int(nev)
	c.thread = r.take(c.n * 4)
	c.flags = r.take(c.n * 4)
	c.lock = r.take(c.n * 4)
	c.addr = r.take(c.n * 4)
	c.site = r.take(c.n * 4)
	c.value = r.take(c.n * 8)
	c.cost = r.take(c.n * 8)
	c.time = r.take(c.n * 8)

	nls := r.u32()
	if nls > 0 && r.err == nil {
		pre := nls
		if pre > 65536 {
			pre = 65536
		}
		c.locksets = make(map[int32]locksetEntry, pre)
	}
	for i := uint32(0); i < nls && r.err == nil; i++ {
		idx := r.u32()
		if idx >= nev {
			return nil, fmt.Errorf("trace: lockset sidecar references event %d of %d", idx, nev)
		}
		var ls locksetEntry
		nl := r.u32()
		for j := uint32(0); j < nl && r.err == nil; j++ {
			ls.locks = append(ls.locks, LockID(r.u32()))
		}
		ns := r.u32()
		for j := uint32(0); j < ns && r.err == nil; j++ {
			ls.sources = append(ls.sources, int32(r.u32()))
		}
		c.locksets[int32(idx)] = ls
	}

	nd := r.u32()
	if nd > 0 && r.err == nil {
		pre := nd
		if pre > 65536 {
			pre = 65536
		}
		c.deltas = make(map[int32]memmodel.Snapshot, pre)
	}
	for i := uint32(0); i < nd && r.err == nil; i++ {
		idx := r.u32()
		if idx >= nev {
			return nil, fmt.Errorf("trace: delta sidecar references event %d of %d", idx, nev)
		}
		c.deltas[int32(idx)] = r.snapshot()
	}

	c.perThread = make([][]int32, c.numThreads)
	for t := 0; t < c.numThreads && r.err == nil; t++ {
		cnt := r.u32()
		if cnt > nev {
			return nil, fmt.Errorf("trace: thread %d index claims %d of %d events", t, cnt, nev)
		}
		if cnt == 0 {
			continue
		}
		evs := make([]int32, cnt)
		for j := uint32(0); j < cnt && r.err == nil; j++ {
			evs[j] = int32(r.u32())
		}
		c.perThread[t] = evs
	}

	nlocks := r.u32()
	if nlocks > 0 && r.err == nil {
		pre := nlocks
		if pre > 65536 {
			pre = 65536
		}
		c.lockOrder = make(map[LockID][]int32, pre)
	}
	for i := uint32(0); i < nlocks && r.err == nil; i++ {
		l := LockID(r.u32())
		cnt := r.u32()
		if cnt > nev {
			return nil, fmt.Errorf("trace: lock %v index claims %d of %d events", l, cnt, nev)
		}
		order := make([]int32, cnt)
		for j := uint32(0); j < cnt && r.err == nil; j++ {
			order[j] = int32(r.u32())
		}
		c.lockOrder[l] = order
	}

	if r.err != nil {
		return nil, fmt.Errorf("trace: read columnar: %w", r.err)
	}
	return c, nil
}

// Trace materializes the full *Trace from the view: events are decoded
// in one tight bulk pass over the columns, and the stored side indexes
// — validated against the columns first, so a corrupt file fails closed
// instead of mis-attributing events — are adopted directly, making the
// subsequent Warm a no-op.
func (c *Columnar) Trace() (*Trace, error) {
	tr := &Trace{
		App:         c.app,
		NumThreads:  c.numThreads,
		TotalTime:   c.totalTime,
		Sites:       NewSiteTable(),
		MemNames:    c.memNames,
		SpinLocks:   c.spinLocks,
		InitMem:     c.initMem,
		FinalMem:    c.finalMem,
		Constraints: c.constraints,
	}
	if len(c.sites) > 0 {
		tr.Sites.sites = c.sites
		tr.Sites.rebuildIndex()
	}
	events := make([]Event, c.n)
	for i := range events {
		events[i] = c.Event(i)
	}
	tr.Events = events
	if err := c.validateIndexes(); err != nil {
		return nil, err
	}
	tr.perThread = c.perThread
	tr.lockOrder = c.lockOrder
	return tr, nil
}

// validateIndexes cross-checks the stored side indexes against the
// columns: every listed event must exist, belong to the claimed
// thread/lock, appear in ascending order, and the lists must be
// complete (totals match the column contents). This is O(events) of
// pure column reads — far cheaper than rebuilding the indexes — and
// fails closed: an index the file got wrong would otherwise silently
// corrupt every replay ordering decision downstream.
func (c *Columnar) validateIndexes() error {
	total := 0
	for t, evs := range c.perThread {
		prev := int32(-1)
		for _, idx := range evs {
			if idx < 0 || int(idx) >= c.n {
				return fmt.Errorf("trace: thread %d index entry %d out of range [0,%d)", t, idx, c.n)
			}
			if idx <= prev {
				return fmt.Errorf("trace: thread %d index not ascending at event %d", t, idx)
			}
			if c.Thread(int(idx)) != int32(t) {
				return fmt.Errorf("trace: thread %d index lists event %d of thread %d", t, idx, c.Thread(int(idx)))
			}
			prev = idx
		}
		total += len(evs)
	}
	if total != c.n {
		return fmt.Errorf("trace: per-thread index covers %d of %d events", total, c.n)
	}
	acqs := 0
	for i := 0; i < c.n; i++ {
		if c.Kind(i) == KLockAcq {
			acqs++
		}
	}
	listed := 0
	for l, order := range c.lockOrder {
		prev := int32(-1)
		for _, idx := range order {
			if idx < 0 || int(idx) >= c.n {
				return fmt.Errorf("trace: lock %v index entry %d out of range [0,%d)", l, idx, c.n)
			}
			if idx <= prev {
				return fmt.Errorf("trace: lock %v index not ascending at event %d", l, idx)
			}
			if c.Kind(int(idx)) != KLockAcq || c.Lock(int(idx)) != l {
				return fmt.Errorf("trace: lock %v index lists event %d (%v of %v)", l, idx, c.Kind(int(idx)), c.Lock(int(idx)))
			}
			prev = idx
		}
		listed += len(order)
	}
	if listed != acqs {
		return fmt.Errorf("trace: per-lock index covers %d of %d acquisitions", listed, acqs)
	}
	return nil
}

// ReadColumnar parses a columnar trace from a reader (reading it fully
// into memory first; use ParseColumnar directly over mapped or already
// in-memory bytes to keep the load zero-copy).
func ReadColumnar(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: read columnar: %w", err)
	}
	c, err := ParseColumnar(data)
	if err != nil {
		return nil, err
	}
	return c.Trace()
}
