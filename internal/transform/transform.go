// Package transform turns a recorded trace with ULCPs into the ULCP-free
// trace of Sec. 3, applying the four rules end to end:
//
//	RULE 1 — causal edges come from the identification report (first-
//	         matched true contentions).
//	RULE 2 — the per-lock partial order of causal nodes is preserved as
//	         explicit happens-before constraints.
//	RULE 3 — causal nodes are re-synchronized with auxiliary locksets.
//	RULE 4 — mutual exclusion becomes lockset intersection, realized by
//	         the replayer acquiring all member locks atomically.
//
// The transformed trace is index-aligned with the original: every event
// keeps its global index (removed synchronization becomes a zero-cost
// no-op), so per-event timestamps from the two replays can be compared
// directly when evaluating Eq. 1.
package transform

import (
	"fmt"

	"perfplay/internal/lockset"
	"perfplay/internal/topo"
	"perfplay/internal/trace"
	"perfplay/internal/ulcp"
)

// Result is the transformation outcome.
type Result struct {
	// Trace is the ULCP-free trace, index-aligned with the original.
	Trace *trace.Trace
	// Graph is the causal topology the rules were applied to.
	Graph *topo.Graph
	// Assignment is the RULE-3 lockset assignment.
	Assignment *lockset.Assignment
	// RemovedSync counts critical sections whose lock operations were
	// removed entirely (null-locks and standalone nodes).
	RemovedSync int
	// LocksetNodes counts critical sections re-synchronized by locksets.
	LocksetNodes int
	// Constraints is the number of RULE-1/RULE-2 happens-before edges
	// emitted.
	Constraints int
}

// Apply performs the transformation.
func Apply(tr *trace.Trace, css []*trace.CritSec, rep *ulcp.Report) (*Result, error) {
	g := topo.Build(css, rep.CausalEdges)
	if _, err := g.TopoSort(); err != nil {
		return nil, fmt.Errorf("transform: %w", err)
	}
	assign := lockset.Assign(g)

	out := trace.New(tr.App, tr.NumThreads)
	out.Sites = tr.Sites
	out.MemNames = tr.MemNames
	out.InitMem = tr.InitMem
	out.FinalMem = tr.FinalMem
	out.SpinLocks = tr.SpinLocks
	out.TotalTime = tr.TotalTime
	out.Events = make([]trace.Event, len(tr.Events))
	copy(out.Events, tr.Events)

	res := &Result{Trace: out, Graph: g, Assignment: assign}

	for _, cs := range css {
		if cs.RelEv < 0 {
			return nil, fmt.Errorf("transform: %v has no release event", cs)
		}
		ls := assign.LS(cs.ID)
		if len(ls) == 0 {
			// Null-locks and standalone nodes: remove the lock/unlock
			// events ("PerfPlay removes lock/unlock events of all
			// null-locks and all standalone nodes", Sec. 3.2). A zero-cost
			// no-op keeps event indices aligned.
			noop(&out.Events[cs.AcqEv])
			noop(&out.Events[cs.RelEv])
			res.RemovedSync++
			continue
		}
		srcs := assign.Sources[cs.ID]
		sources := make([]int32, len(srcs))
		for i, src := range srcs {
			if src < 0 {
				sources[i] = -1
			} else {
				sources[i] = g.CS(src).RelEv
			}
		}
		acq := &out.Events[cs.AcqEv]
		acq.Kind = trace.KLocksetAcq
		acq.Lock = trace.NoLock
		acq.Locks = []trace.LockID(ls)
		acq.Sources = sources
		acq.Spin = false
		rel := &out.Events[cs.RelEv]
		rel.Kind = trace.KLocksetRel
		rel.Lock = trace.NoLock
		rel.Locks = []trace.LockID(ls)
		res.LocksetNodes++
	}

	// RULE 1 + RULE 2: every causal edge becomes a happens-before
	// constraint (release of the source before acquisition of the
	// target). Because mutually conflicting nodes of one lock all scan
	// each other, the transitive closure of these edges reproduces their
	// original acquisition order — which is exactly the partial order
	// RULE 2 requires (the {R1 ≺ W1 ≺ W1 ≺ W1} chain of Fig. 7 arises
	// from the edges alone). Non-conflicting causal nodes stay unordered
	// and may overlap: that is the parallelism the transformation exposes.
	consSeen := make(map[trace.Constraint]bool)
	addCons := func(after, before int32) {
		c := trace.Constraint{After: after, Before: before}
		if consSeen[c] {
			return
		}
		consSeen[c] = true
		out.Constraints = append(out.Constraints, c)
	}
	for _, e := range g.Edges() {
		addCons(g.CS(e.From).RelEv, g.CS(e.To).AcqEv)
	}
	res.Constraints = len(out.Constraints)

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("transform: produced invalid trace: %w", err)
	}
	return res, nil
}

// noop rewrites a synchronization event into a zero-cost compute event,
// preserving thread, site and recorded timestamp so indices stay aligned.
func noop(e *trace.Event) {
	e.Kind = trace.KCompute
	e.Lock = trace.NoLock
	e.Locks = nil
	e.Sources = nil
	e.Cost = 0
	e.Spin = false
}
