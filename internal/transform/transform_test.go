package transform

import (
	"testing"

	"perfplay/internal/replay"
	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/ulcp"
	"perfplay/internal/verify"
	"perfplay/internal/vtime"
)

// pipeline records a program, identifies ULCPs and applies the transform.
func pipeline(t *testing.T, build func(p *sim.Program)) (*sim.Result, []*trace.CritSec, *ulcp.Report, *Result) {
	t.Helper()
	p := sim.NewProgram("t")
	build(p)
	rec := sim.Run(p, sim.Config{Seed: 13})
	css := rec.Trace.ExtractCS()
	rep := ulcp.Identify(rec.Trace, css, ulcp.Options{})
	res, err := Apply(rec.Trace, css, rep)
	if err != nil {
		t.Fatal(err)
	}
	return rec, css, rep, res
}

func TestTransformRemovesStandaloneSync(t *testing.T) {
	// Pure read-read workload: every CS is standalone, all sync removed.
	_, css, _, res := pipeline(t, func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 9)
		s := p.Site("f.c", 1, "r")
		for i := 0; i < 2; i++ {
			p.AddThread(func(th *sim.Thread) {
				for j := 0; j < 5; j++ {
					th.Lock(l, s)
					th.Read(x, s)
					th.Unlock(l, s)
					th.Compute(100)
				}
			})
		}
	})
	if res.RemovedSync != len(css) {
		t.Fatalf("removed %d of %d CSs; all read-only CSs are standalone", res.RemovedSync, len(css))
	}
	if res.LocksetNodes != 0 {
		t.Fatalf("lockset nodes = %d, want 0", res.LocksetNodes)
	}
	if got := res.Trace.CountKind(trace.KLockAcq); got != 0 {
		t.Fatalf("transformed trace still has %d original acquisitions", got)
	}
	if len(res.Trace.Constraints) != 0 {
		t.Fatalf("constraints = %d, want 0 without causal edges", len(res.Trace.Constraints))
	}
}

func TestTransformIndexAlignment(t *testing.T) {
	rec, _, _, res := pipeline(t, func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 0)
		s := p.Site("f.c", 1, "w")
		for i := 0; i < 2; i++ {
			i := i
			p.AddThread(func(th *sim.Thread) {
				th.Compute(vtime.Duration(100 * (i + 1)))
				th.Lock(l, s)
				th.Read(x, s)
				th.Write(x, int64(i+1), s)
				th.Unlock(l, s)
			})
		}
	})
	if len(res.Trace.Events) != len(rec.Trace.Events) {
		t.Fatal("transformed trace must be index-aligned with the original")
	}
	for i := range rec.Trace.Events {
		if rec.Trace.Events[i].Thread != res.Trace.Events[i].Thread {
			t.Fatalf("event %d changed thread", i)
		}
	}
}

func TestTransformPreservesTrueContentionOrder(t *testing.T) {
	// Conflicting writes: the transformed replay must keep the recorded
	// order via constraints (RULE 2) and reproduce the final state.
	rec, _, rep, res := pipeline(t, func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 0)
		s := p.Site("f.c", 1, "w")
		for i := 0; i < 3; i++ {
			i := i
			p.AddThread(func(th *sim.Thread) {
				for j := 0; j < 4; j++ {
					th.Compute(vtime.Duration(130*i + 90*j))
					th.Lock(l, s)
					th.Read(x, s)
					th.Write(x, int64(i*100+j), s)
					th.Unlock(l, s)
				}
			})
		}
	})
	if rep.Counts[ulcp.TLCP] == 0 {
		t.Fatal("expected true contention")
	}
	if res.Constraints == 0 {
		t.Fatal("no constraints emitted for causal edges")
	}
	orig, err := replay.Run(rec.Trace, replay.Options{Sched: replay.ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	free, err := replay.Run(res.Trace, replay.Options{Sched: replay.ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	if !free.FinalMem.Equal(orig.FinalMem) {
		t.Fatal("transformed replay diverged from original final state")
	}
	if free.ReadHash != orig.ReadHash {
		t.Fatal("transformed replay observed different read values")
	}
}

func TestTransformNullLockRemoval(t *testing.T) {
	_, _, rep, res := pipeline(t, func(p *sim.Program) {
		l := p.NewLock("L")
		s := p.Site("f.c", 1, "nl")
		for i := 0; i < 2; i++ {
			p.AddThread(func(th *sim.Thread) {
				for j := 0; j < 3; j++ {
					th.Lock(l, s)
					th.Compute(50)
					th.Unlock(l, s)
					th.Compute(80)
				}
			})
		}
	})
	if rep.Counts[ulcp.NullLock] == 0 {
		t.Fatal("expected null-locks")
	}
	if res.RemovedSync != 6 {
		t.Fatalf("removed = %d, want all 6 null CSs", res.RemovedSync)
	}
}

func TestTransformLocksetStructure(t *testing.T) {
	_, css, _, res := pipeline(t, func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 0)
		s := p.Site("f.c", 1, "w")
		for i := 0; i < 2; i++ {
			i := i
			p.AddThread(func(th *sim.Thread) {
				th.Compute(vtime.Duration(100 * (i + 1)))
				th.Lock(l, s)
				th.Read(x, s)
				th.Write(x, int64(i+77), s)
				th.Unlock(l, s)
			})
		}
	})
	// Two conflicting CSs: source gets its own aux lock; target inherits.
	var acq *trace.Event
	for i := range res.Trace.Events {
		if res.Trace.Events[i].Kind == trace.KLocksetAcq && len(res.Trace.Events[i].Locks) == 1 {
			if len(res.Trace.Events[i].Sources) == 1 && res.Trace.Events[i].Sources[0] >= 0 {
				acq = &res.Trace.Events[i]
			}
		}
	}
	if acq == nil {
		t.Fatal("no inheriting lockset acquisition found")
	}
	// Its source must be the release event of the other CS.
	src := acq.Sources[0]
	found := false
	for _, cs := range css {
		if cs.RelEv == src {
			found = true
		}
	}
	if !found {
		t.Fatal("lockset source does not point at a CS release event")
	}
	if !acq.Locks[0].IsAux() {
		t.Fatal("lockset member is not an auxiliary lock")
	}
}

func TestTransformValidates(t *testing.T) {
	rec, css, rep, res := pipeline(t, func(p *sim.Program) {
		l1, l2 := p.NewLock("L1"), p.NewLock("L2")
		x := p.Mem.Alloc("x", 0)
		s := p.Site("f.c", 1, "n")
		for i := 0; i < 2; i++ {
			p.AddThread(func(th *sim.Thread) {
				for j := 0; j < 3; j++ {
					th.Lock(l1, s)
					th.Lock(l2, s) // nested
					th.Add(x, 1, s)
					th.Unlock(l2, s)
					th.Unlock(l1, s)
					th.Compute(70)
				}
			})
		}
	})
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("transformed nested-lock trace invalid: %v", err)
	}
	_ = rec
	_ = css
	_ = rep
}

// TestTransformTheorem1Quick: for randomized programs, the transformation
// must always satisfy Theorem 1 (same outcome, or races reported) and
// never slow the replay down.
func TestTransformTheorem1Quick(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p := sim.NewProgram("q")
		nlocks := 1 + int(seed%3)
		var locks []trace.LockID
		for i := 0; i < nlocks; i++ {
			locks = append(locks, p.NewLock("L"))
		}
		cells := p.Mem.AllocN("c", 3, 0)
		s := p.Site("q.c", 1, "f")
		for i := 0; i < 2+int(seed%2); i++ {
			p.AddThread(func(th *sim.Thread) {
				for j := 0; j < 7; j++ {
					th.Compute(vtime.Duration(40 + th.Intn(300)))
					l := locks[th.Intn(len(locks))]
					th.Lock(l, s)
					switch th.Intn(4) {
					case 0: // null
					case 1:
						th.Read(cells[th.Intn(len(cells))], s)
					case 2:
						th.Add(cells[th.Intn(len(cells))], 1, s)
					default:
						c := cells[th.Intn(len(cells))]
						th.Read(c, s)
						th.Add(c, 2, s)
					}
					th.Compute(vtime.Duration(30 + th.Intn(200)))
					th.Unlock(l, s)
				}
			})
		}
		rec := sim.Run(p, sim.Config{Seed: seed})
		css := rec.Trace.ExtractCS()
		rep := ulcp.Identify(rec.Trace, css, ulcp.Options{})
		res, err := Apply(rec.Trace, css, rep)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		chk, err := verify.Check(rec.Trace, res.Trace, 8)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !chk.Ok() {
			t.Fatalf("seed %d: theorem 1 violated\n%s", seed, chk)
		}
		if chk.Speedup > 1.0001 {
			t.Fatalf("seed %d: transformation slowed the replay (%.4fx)", seed, chk.Speedup)
		}
	}
}
