// Package record implements the recording-phase conveniences of Sec. 5.1:
// checkpoints, trace slicing for focused debugging, and helpers for the
// selective-recording strategy (state deltas instead of re-execution).
//
// The raw recording itself happens inside the simulator (the analogue of
// the paper's Pin tool); this package post-processes recorded traces so a
// programmer can "focus on a smaller code region" across repeated
// debugging runs.
package record

import (
	"fmt"
	"sort"

	"perfplay/internal/memmodel"
	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

// Checkpoint marks a cut point in a recorded trace: the virtual time, the
// memory image at that time, and the first event index at-or-after the cut
// for each thread.
type Checkpoint struct {
	// Time is the cut timestamp.
	Time vtime.Time
	// Mem is the memory image after every event recorded before Time.
	Mem memmodel.Snapshot
	// NextEvent[t] is the position within thread t's event sequence of
	// its first event at-or-after the cut.
	NextEvent []int
}

// CheckpointAt computes the checkpoint of tr at time at: memory is the
// initial image plus every write and skip-delta recorded strictly before
// at (the trace's event order is its recorded execution order).
func CheckpointAt(tr *trace.Trace, at vtime.Time) *Checkpoint {
	cp := &Checkpoint{
		Time:      at,
		Mem:       make(memmodel.Snapshot),
		NextEvent: make([]int, tr.NumThreads),
	}
	for a, v := range tr.InitMem {
		cp.Mem[a] = v
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Time >= at {
			continue
		}
		switch e.Kind {
		case trace.KWrite:
			cp.Mem[e.Addr] = e.Op.Apply(cp.Mem[e.Addr], e.Value)
		case trace.KSkip:
			for a, v := range e.Delta {
				cp.Mem[a] = v
			}
		}
	}
	for t, evs := range tr.PerThread() {
		n := sort.Search(len(evs), func(i int) bool {
			return tr.Events[evs[i]].Time >= at
		})
		cp.NextEvent[t] = n
	}
	return cp
}

// Slice extracts the sub-trace of tr between two virtual times: the
// result's initial memory is the from-checkpoint image and its events are
// every event recorded in [from, to). Critical sections straddling a cut
// are completed/open-closed with zero-cost synthetic boundaries so the
// slice stays a valid, replayable trace.
func Slice(tr *trace.Trace, from, to vtime.Time) (*trace.Trace, error) {
	if to <= from {
		return nil, fmt.Errorf("record: empty slice window [%v, %v)", from, to)
	}
	cp := CheckpointAt(tr, from)
	out := trace.New(tr.App+fmt.Sprintf("[%v:%v]", from, to), tr.NumThreads)
	out.Sites = tr.Sites
	out.MemNames = tr.MemNames
	out.SpinLocks = tr.SpinLocks
	out.InitMem = cp.Mem

	// Track locks held at the cut so we can synthesize acquisitions.
	held := make([]map[trace.LockID]trace.SiteID, tr.NumThreads)
	for t := range held {
		held[t] = make(map[trace.LockID]trace.SiteID)
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Time >= from {
			break
		}
		switch e.Kind {
		case trace.KLockAcq:
			held[e.Thread][e.Lock] = e.Site
		case trace.KLockRel:
			delete(held[e.Thread], e.Lock)
		}
	}
	// Synthesize zero-cost acquisitions for straddling critical sections.
	for t := range held {
		locks := make([]trace.LockID, 0, len(held[t]))
		for l := range held[t] {
			locks = append(locks, l)
		}
		sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
		for _, l := range locks {
			out.Append(trace.Event{
				Thread: int32(t), Kind: trace.KLockAcq, Lock: l,
				Time: from, Site: held[t][l],
			})
		}
	}

	stillHeld := held
	var maxT vtime.Time
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Time < from || e.Time >= to {
			continue
		}
		out.Append(*e)
		switch e.Kind {
		case trace.KLockAcq:
			stillHeld[e.Thread][e.Lock] = e.Site
		case trace.KLockRel:
			delete(stillHeld[e.Thread], e.Lock)
		}
		if e.Time > maxT {
			maxT = e.Time
		}
	}
	// Close critical sections left open at the right edge.
	for t := range stillHeld {
		locks := make([]trace.LockID, 0, len(stillHeld[t]))
		for l := range stillHeld[t] {
			locks = append(locks, l)
		}
		sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
		for _, l := range locks {
			out.Append(trace.Event{
				Thread: int32(t), Kind: trace.KLockRel, Lock: l,
				Time: maxT, Site: stillHeld[t][l],
			})
		}
	}
	out.TotalTime = vtime.Duration(maxT - from)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("record: slice produced invalid trace: %w", err)
	}
	return out, nil
}

// Stats summarizes a trace for recording reports.
type Stats struct {
	Events       int
	Computes     int
	SharedAccess int
	LockOps      int
	Skips        int
	// SkippedTime is virtual time covered by selectively-recorded ranges.
	SkippedTime vtime.Duration
	// SkippedStateBytes approximates the recorded delta footprint (one
	// cell = 12 bytes: address + value).
	SkippedStateBytes int
}

// Summarize computes recording statistics, quantifying how much of the
// execution selective recording elided.
func Summarize(tr *trace.Trace) Stats {
	var s Stats
	s.Events = len(tr.Events)
	for i := range tr.Events {
		e := &tr.Events[i]
		switch e.Kind {
		case trace.KCompute:
			s.Computes++
		case trace.KRead, trace.KWrite:
			s.SharedAccess++
		case trace.KLockAcq, trace.KLockRel, trace.KLocksetAcq, trace.KLocksetRel:
			s.LockOps++
		case trace.KSkip:
			s.Skips++
			s.SkippedTime += e.Cost
			s.SkippedStateBytes += 12 * len(e.Delta)
		}
	}
	return s
}
