package record

import (
	"testing"

	"perfplay/internal/core"
	"perfplay/internal/memmodel"
	"perfplay/internal/replay"
	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

func sample() *sim.Result {
	p := sim.NewProgram("rec")
	l := p.NewLock("L")
	x := p.Mem.Alloc("x", 0)
	s := p.Site("r.c", 1, "f")
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < 10; j++ {
				th.Compute(200)
				th.Lock(l, s)
				th.Add(x, 1, s)
				th.Unlock(l, s)
			}
		})
	}
	return sim.Run(p, sim.Config{Seed: 5})
}

func TestCheckpointMemoryState(t *testing.T) {
	rec := sample()
	mid := vtime.Time(int64(rec.Total) / 2)
	cp := CheckpointAt(rec.Trace, mid)
	// The counter at the checkpoint equals the number of adds before it.
	adds := int64(0)
	for i := range rec.Trace.Events {
		e := &rec.Trace.Events[i]
		if e.Kind == trace.KWrite && e.Time < mid {
			adds++
		}
	}
	var x memmodel.Addr = 0
	for a, name := range rec.Trace.MemNames {
		if name == "x" {
			x = a
		}
	}
	if cp.Mem[x] != adds {
		t.Fatalf("checkpoint x = %d, want %d", cp.Mem[x], adds)
	}
	for tid, n := range cp.NextEvent {
		evs := rec.Trace.PerThread()[tid]
		if n > 0 && rec.Trace.Events[evs[n-1]].Time >= mid {
			t.Fatalf("thread %d: event before cut has time >= cut", tid)
		}
		if n < len(evs) && rec.Trace.Events[evs[n]].Time < mid {
			t.Fatalf("thread %d: event after cut has time < cut", tid)
		}
	}
}

func TestSliceValidAndReplayable(t *testing.T) {
	rec := sample()
	from := vtime.Time(int64(rec.Total) / 4)
	to := vtime.Time(int64(rec.Total) * 3 / 4)
	sl, err := Slice(rec.Trace, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.Validate(); err != nil {
		t.Fatalf("slice invalid: %v", err)
	}
	if len(sl.Events) == 0 || len(sl.Events) >= len(rec.Trace.Events) {
		t.Fatalf("slice has %d events of %d", len(sl.Events), len(rec.Trace.Events))
	}
	// A slice must replay cleanly.
	if _, err := replay.Run(sl, replay.Options{Sched: replay.OrigS}); err != nil {
		t.Fatalf("slice replay failed: %v", err)
	}
}

func TestSliceEmptyWindow(t *testing.T) {
	rec := sample()
	if _, err := Slice(rec.Trace, 100, 100); err == nil {
		t.Fatal("empty window must error")
	}
}

func TestSummarizeCountsSkips(t *testing.T) {
	p := sim.NewProgram("sum")
	y := p.Mem.Alloc("y", 0)
	s := p.Site("r.c", 1, "f")
	p.AddThread(func(th *sim.Thread) {
		th.Compute(100)
		th.SkipRange(5000, func(m *memmodel.Memory) { m.Store(y, 3) })
		th.Read(y, s)
	})
	rec := sim.Run(p, sim.Config{Seed: 1})
	st := Summarize(rec.Trace)
	if st.Skips != 1 {
		t.Fatalf("skips = %d, want 1", st.Skips)
	}
	if st.SkippedTime != 5000 {
		t.Fatalf("skipped time = %v, want 5000", st.SkippedTime)
	}
	if st.SkippedStateBytes != 12 {
		t.Fatalf("skipped bytes = %d, want 12", st.SkippedStateBytes)
	}
	if st.Computes == 0 || st.SharedAccess != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSelectiveRecordingSavesTraceFootprint compares a workload that
// selectively records a heavy library call (KSkip delta) against the same
// workload recorded completely: the selective trace must be much smaller
// while replaying to the same final state (Sec. 5.1).
func TestSelectiveRecordingSavesTraceFootprint(t *testing.T) {
	build := func(selective bool) *sim.Result {
		p := sim.NewProgram("sel")
		l := p.NewLock("L")
		buf := p.Mem.AllocN("iobuf", 8, 0)
		s := p.Site("s.c", 1, "f")
		for i := 0; i < 2; i++ {
			p.AddThread(func(th *sim.Thread) {
				for j := 0; j < 10; j++ {
					// A "library call" that touches many cells.
					if selective {
						j := j
						th.SkipRange(2000, func(m *memmodel.Memory) {
							for k, a := range buf {
								m.Store(a, int64(j*10+k))
							}
						})
					} else {
						for k, a := range buf {
							th.Write(a, int64(j*10+k), s)
							th.Compute(2000/int64Dur(len(buf)) - 15)
						}
					}
					th.Lock(l, s)
					th.Read(buf[0], s)
					th.Unlock(l, s)
				}
			})
		}
		return sim.Run(p, sim.Config{Seed: 4})
	}
	sel := build(true)
	full := build(false)
	if len(sel.Trace.Events) >= len(full.Trace.Events) {
		t.Fatalf("selective trace has %d events, complete has %d; expected savings",
			len(sel.Trace.Events), len(full.Trace.Events))
	}
	st := Summarize(sel.Trace)
	if st.Skips != 20 {
		t.Fatalf("skips = %d, want 20", st.Skips)
	}
	// Both record the same final buffer contents.
	if !sel.Trace.FinalMem.Equal(full.Trace.FinalMem) {
		t.Fatal("selective and complete recordings disagree on final state")
	}
	// And the selective trace replays to that state too.
	res, err := replay.Run(sel.Trace, replay.Options{Sched: replay.ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FinalMem.Equal(sel.Trace.FinalMem) {
		t.Fatal("selective replay lost the skipped state")
	}
}

func int64Dur(n int) vtime.Duration { return vtime.Duration(n) }

// TestSliceSupportsFocusedDebugging is Sec. 5.1's checkpoint use case end
// to end: cut a window out of a long recording and run the full PerfPlay
// pipeline on just that window.
func TestSliceSupportsFocusedDebugging(t *testing.T) {
	rec := sample()
	from := vtime.Time(int64(rec.Total) / 4)
	to := vtime.Time(int64(rec.Total) * 3 / 4)
	sl, err := Slice(rec.Trace, from, to)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.AnalyzeTrace(sl, core.Config{})
	if err != nil {
		t.Fatalf("pipeline on slice: %v", err)
	}
	if len(a.CSs) == 0 {
		t.Fatal("slice lost every critical section")
	}
	if a.Debug.Tut == 0 {
		t.Fatal("slice replay has zero duration")
	}
}
