package perfdbg

import (
	"strings"
	"testing"

	"perfplay/internal/replay"
	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/transform"
	"perfplay/internal/ulcp"
	"perfplay/internal/vtime"
)

// analyze runs the full pre-debugging pipeline on a built program.
func analyze(t *testing.T, build func(p *sim.Program)) *Debug {
	t.Helper()
	p := sim.NewProgram("t")
	build(p)
	rec := sim.Run(p, sim.Config{Seed: 21})
	css := rec.Trace.ExtractCS()
	rep := ulcp.Identify(rec.Trace, css, ulcp.Options{})
	tres, err := transform.Apply(rec.Trace, css, rep)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := replay.Run(rec.Trace, replay.Options{Sched: replay.ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	free, err := replay.Run(tres.Trace, replay.Options{Sched: replay.ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	return Evaluate(rec.Trace, css, rep, orig, free, rec.Trace.NumThreads)
}

func contended(threads, iters int) func(p *sim.Program) {
	return func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 4)
		s := p.Site("hot.c", 10, "reader")
		for i := 0; i < threads; i++ {
			p.AddThread(func(th *sim.Thread) {
				for j := 0; j < iters; j++ {
					th.Lock(l, s)
					th.Read(x, s)
					th.Compute(600)
					th.Unlock(l, s)
					th.Compute(150)
				}
			})
		}
	}
}

func TestEvaluateDegradationPositive(t *testing.T) {
	d := analyze(t, contended(3, 8))
	if d.Tpd <= 0 {
		t.Fatalf("Tpd = %v, want > 0 for a contended read-only workload", d.Tpd)
	}
	if d.NormalizedDegradation() <= 0 || d.NormalizedDegradation() >= 1 {
		t.Fatalf("normalized degradation = %v out of range", d.NormalizedDegradation())
	}
	if d.SumDelta <= 0 {
		t.Fatal("Eq. 1 sum must be positive")
	}
	if len(d.PerPair) == 0 {
		t.Fatal("no per-pair measurements")
	}
}

func TestGroupsFuseSameRegion(t *testing.T) {
	d := analyze(t, contended(2, 10))
	// All pairs come from one code region pair: exactly one group.
	if len(d.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(d.Groups))
	}
	g := d.Groups[0]
	if g.Count != len(d.PerPair) {
		t.Fatalf("group count %d != pairs %d", g.Count, len(d.PerPair))
	}
	if g.P < 0.999 {
		t.Fatalf("single group P = %v, want ~1", g.P)
	}
	if !strings.Contains(g.String(), "hot.c") {
		t.Errorf("group string %q missing region", g.String())
	}
}

func TestGroupsSeparateRegions(t *testing.T) {
	d := analyze(t, func(p *sim.Program) {
		l1 := p.NewLock("L1")
		l2 := p.NewLock("L2")
		x := p.Mem.Alloc("x", 1)
		y := p.Mem.Alloc("y", 2)
		sa := p.Site("a.c", 10, "ra")
		sb := p.Site("b.c", 20, "rb")
		for i := 0; i < 2; i++ {
			p.AddThread(func(th *sim.Thread) {
				for j := 0; j < 6; j++ {
					th.Lock(l1, sa)
					th.Read(x, sa)
					th.Compute(700)
					th.Unlock(l1, sa)
					th.Lock(l2, sb)
					th.Read(y, sb)
					th.Compute(250)
					th.Unlock(l2, sb)
					th.Compute(120)
				}
			})
		}
	})
	if len(d.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 distinct code regions", len(d.Groups))
	}
	// Eq. 2: shares sum to 1 and are ranked descending.
	total := 0.0
	for _, g := range d.Groups {
		total += g.P
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("ΣP = %v, want 1", total)
	}
	if d.Groups[0].P < d.Groups[1].P {
		t.Fatal("groups not ranked by P descending")
	}
	// The longer critical section (a.c) should be the top recommendation.
	if d.Groups[0].CR1.File != "a.c" {
		t.Errorf("top group = %v, want the a.c region", d.Groups[0].CR1)
	}
	if got := d.Recommend(1); len(got) != 1 || got[0] != d.Groups[0] {
		t.Error("Recommend(1) must return the top group")
	}
}

func TestFuseAlgorithm2Overlap(t *testing.T) {
	r := func(a, b int) trace.Region { return trace.Region{File: "f.c", StartLine: a, EndLine: b} }
	mk := func(cr1, cr2 trace.Region, dt vtime.Duration) PairPerf {
		return PairPerf{
			Pair: ulcp.Pair{
				C1:  &trace.CritSec{Region: cr1},
				C2:  &trace.CritSec{Region: cr2},
				Cat: ulcp.ReadRead,
			},
			DeltaT: dt,
		}
	}
	// Two pairs with overlapping (not identical) regions must fuse, and a
	// crossed pair (CR1↔CR2 swapped) must fuse too.
	pairs := []PairPerf{
		mk(r(10, 20), r(100, 110), 5),
		mk(r(15, 25), r(105, 115), 7),
		mk(r(102, 112), r(12, 22), 3), // crossed
		mk(r(500, 510), r(600, 610), 11),
	}
	groups := fuse(pairs)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (three fused + one separate)", len(groups))
	}
	var fused *Group
	for _, g := range groups {
		if g.Count == 3 {
			fused = g
		}
	}
	if fused == nil {
		t.Fatal("three overlapping pairs did not fuse into one group")
	}
	if fused.DeltaT != 15 {
		t.Fatalf("fused ΔT = %v, want 15 (accumulation)", fused.DeltaT)
	}
	if fused.CR1.StartLine != 10 || fused.CR1.EndLine != 25 {
		t.Fatalf("fused CR1 = %v, want f.c:10-25", fused.CR1)
	}
}

func TestCPUWastePerThread(t *testing.T) {
	d := &Debug{Tut: 1000, Trw: 200}
	if got := d.CPUWastePerThread(2); got != 0.1 {
		t.Fatalf("waste/thread = %v, want 0.1", got)
	}
	if got := d.CPUWastePerThread(0); got != 0 {
		t.Fatal("zero threads must not divide by zero")
	}
	empty := &Debug{}
	if empty.NormalizedDegradation() != 0 || empty.CPUWastePerThread(2) != 0 {
		t.Fatal("empty debug must normalize to zero")
	}
}

func TestEq1NonNegative(t *testing.T) {
	d := analyze(t, contended(4, 6))
	for _, pp := range d.PerPair {
		if pp.DeltaT < 0 {
			t.Fatalf("ΔT = %v < 0 for %v", pp.DeltaT, pp.Pair.C1)
		}
	}
}
