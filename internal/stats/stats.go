// Package stats provides the small statistical toolkit the experiment
// harness uses: means, standard deviations (the error bars of Fig. 13),
// and normalization helpers.
package stats

import (
	"math"
	"sort"

	"perfplay/internal/vtime"
)

// Sample is a collection of observations.
type Sample []float64

// FromDurations converts virtual durations to a sample.
func FromDurations(ds []vtime.Duration) Sample {
	s := make(Sample, len(ds))
	for i, d := range ds {
		s[i] = float64(d)
	}
	return s
}

// Mean returns the arithmetic mean (0 for an empty sample).
func (s Sample) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s {
		sum += x
	}
	return sum / float64(len(s))
}

// Std returns the population standard deviation.
func (s Sample) Std() float64 {
	if len(s) < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s)))
}

// Min returns the smallest observation (0 for empty).
func (s Sample) Min() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, x := range s[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 for empty).
func (s Sample) Max() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, x := range s[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CV returns the coefficient of variation (σ/μ), the scale-free stability
// measure used to compare replay schemes; 0 when the mean is 0.
func (s Sample) CV() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.Std() / m
}

// Median returns the middle observation.
func (s Sample) Median() float64 {
	if len(s) == 0 {
		return 0
	}
	c := append(Sample(nil), s...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Pct formats a fraction as a percentage value (e.g. 0.051 -> 5.1).
func Pct(frac float64) float64 { return frac * 100 }
