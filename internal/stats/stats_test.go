package stats

import (
	"math"
	"testing"
	"testing/quick"

	"perfplay/internal/vtime"
)

func TestMeanStd(t *testing.T) {
	s := Sample{2, 4, 4, 4, 5, 5, 7, 9}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %v, want 5", got)
	}
	if got := s.Std(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("std = %v, want 2", got)
	}
	if got := s.CV(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("cv = %v, want 0.4", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	var e Sample
	if e.Mean() != 0 || e.Std() != 0 || e.Min() != 0 || e.Max() != 0 || e.Median() != 0 || e.CV() != 0 {
		t.Fatal("empty sample must be all zeros")
	}
	s := Sample{3}
	if s.Mean() != 3 || s.Std() != 0 || s.Min() != 3 || s.Max() != 3 || s.Median() != 3 {
		t.Fatal("singleton stats wrong")
	}
}

func TestMinMaxMedian(t *testing.T) {
	s := Sample{9, 1, 5, 3}
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatal("min/max wrong")
	}
	if got := s.Median(); got != 4 {
		t.Fatalf("median = %v, want 4", got)
	}
	odd := Sample{9, 1, 5}
	if got := odd.Median(); got != 5 {
		t.Fatalf("median = %v, want 5", got)
	}
}

func TestFromDurations(t *testing.T) {
	s := FromDurations([]vtime.Duration{10, 20})
	if s.Mean() != 15 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestRatioPct(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("ratio by zero must be 0")
	}
	if Ratio(3, 2) != 1.5 {
		t.Fatal("ratio wrong")
	}
	if Pct(0.051) != 5.1 {
		t.Fatal("pct wrong")
	}
}

// Min <= Median <= Max and Std >= 0 for any sample.
func TestInvariantsQuick(t *testing.T) {
	f := func(xs []int16) bool {
		if len(xs) == 0 {
			return true
		}
		s := make(Sample, len(xs))
		for i, x := range xs {
			s[i] = float64(x)
		}
		return s.Min() <= s.Median() && s.Median() <= s.Max() && s.Std() >= 0 &&
			s.Min() <= s.Mean() && s.Mean() <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
