module perfplay

// 1.23 is the floor CI's version matrix tests; the code sticks to
// 1.23-compatible language and stdlib surface (the one `omitzero` JSON
// tag degrades to always-serializing under 1.23, which nothing relies
// on).
go 1.23
