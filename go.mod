module perfplay

go 1.24
